//! The chip: a collection of blocks behind a validated command interface
//! mirroring what the paper's FPGA platform drives (erase, program, read,
//! read-retry) plus the per-block Vpass control the paper proposes.
//!
//! A chip is built at one of three fidelity tiers (see [`crate::fidelity`]):
//! the default [`ReadFidelity::CellExact`] keeps per-cell Monte-Carlo state
//! ([`Block`]/[`crate::CellArray`]); [`ReadFidelity::PageAnalytic`] serves
//! reads from the calibrated closed-form model at O(errors) per page and
//! returns [`FlashError::FidelityUnsupported`] for the per-cell oracles;
//! [`ReadFidelity::BlockAggregate`] fast-forwards per-block closed-form
//! state between interesting events at O(1) per read, with no payloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aggregate_block::AggregateState;
use crate::analytic::AnalyticModel;
use crate::analytic_block::AnalyticBlock;
use crate::bits;
use crate::block::{Block, BlockStatus};
use crate::error::FlashError;
use crate::fidelity::ReadFidelity;
use crate::geometry::Geometry;
use crate::params::ChipParams;
use crate::state::{CellState, ALL_STATES};
use crate::BitErrorStats;

/// Result of a page read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Sensed page data (packed bits, one per bitline).
    pub data: Vec<u8>,
    /// Raw bit errors against the programmed data (what on-die ECC would be
    /// asked to correct; its error count is what the tuning mechanism reads).
    pub stats: BitErrorStats,
    /// Bitlines that failed to conduct because an unread cell exceeded the
    /// pass-through voltage (the paper's "number of 0's", §3 Step 2).
    pub blocked_bitlines: u64,
}

/// Result of a read-retry sweep read (a read at shifted references).
#[derive(Debug, Clone, PartialEq)]
pub struct RetryReadOutcome {
    /// The reference shift applied (normalized volts).
    pub shift: f64,
    /// The read outcome at that shift.
    pub outcome: ReadOutcome,
}

/// Histogram of threshold voltages across a block, broken down by intended
/// state — the raw material of the paper's Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct VthHistogram {
    /// Width of each bin (normalized volts).
    pub bin_width: f64,
    /// Voltage at the left edge of bin 0.
    pub min: f64,
    /// Total cell count per bin.
    pub counts: Vec<u64>,
    /// Cell count per bin, split by intended state (ER, P1, P2, P3).
    pub by_state: [Vec<u64>; 4],
    /// Total number of cells binned.
    pub total: u64,
}

impl VthHistogram {
    /// Center voltage of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.min + (i as f64 + 0.5) * self.bin_width
    }

    /// Probability density estimate at bin `i` (integrates to 1 over all
    /// states combined).
    pub fn pdf(&self, i: usize) -> f64 {
        self.counts[i] as f64 / (self.total.max(1) as f64 * self.bin_width)
    }

    /// Probability density estimate for a single state at bin `i`
    /// (normalized by the total population, like the paper's Fig. 2).
    pub fn pdf_state(&self, state: CellState, i: usize) -> f64 {
        self.by_state[state.index() as usize][i] as f64
            / (self.total.max(1) as f64 * self.bin_width)
    }

    /// Mean voltage of cells intended for `state`.
    pub fn state_mean(&self, state: CellState) -> f64 {
        let s = &self.by_state[state.index() as usize];
        let (mut num, mut den) = (0.0, 0.0);
        for (i, &c) in s.iter().enumerate() {
            num += self.bin_center(i) * c as f64;
            den += c as f64;
        }
        if den == 0.0 {
            f64::NAN
        } else {
            num / den
        }
    }
}

/// Per-block storage of the chip, selected by the fidelity tier.
// One Storage exists per chip, so the size spread between the variants
// costs a few hundred bytes total — boxing would only add an indirection
// on the read hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Storage {
    /// Per-cell Monte-Carlo state.
    Exact(Vec<Block>),
    /// Closed-form model plus lightweight per-block counters and payloads.
    Analytic { model: AnalyticModel, blocks: Vec<AnalyticBlock> },
    /// Closed-form model plus struct-of-arrays per-block aggregate state
    /// (no payloads; reads fast-forward between interesting events).
    Aggregate { model: AnalyticModel, state: AggregateState },
}

/// The simulated MLC NAND flash chip.
#[derive(Debug)]
pub struct Chip {
    geometry: Geometry,
    params: ChipParams,
    storage: Storage,
    rng: StdRng,
    /// ECC correction capability hint (error bits per page) used by the
    /// block-aggregate tier to compute ECC-margin crossings analytically.
    read_margin: Option<u64>,
}

impl Chip {
    /// Creates a chip with the given geometry and model parameters,
    /// deterministically seeded. The fidelity tier is taken from
    /// [`ChipParams::fidelity`].
    ///
    /// # Panics
    ///
    /// Panics if the geometry has zero blocks or a bitline count that is not
    /// a multiple of 8 (pages are exchanged as packed bytes), if the
    /// geometry's `bits_per_cell` disagrees with the parameter set's state
    /// count, or if a non-MLC chip is built at the per-cell Monte-Carlo
    /// tier (the cell-exact model is MLC-native; TLC/QLC parts run on the
    /// analytic tiers).
    pub fn new(geometry: Geometry, params: ChipParams, seed: u64) -> Self {
        assert!(geometry.blocks > 0, "chip needs at least one block");
        assert!(geometry.wordlines_per_block > 0, "blocks need wordlines");
        assert_eq!(geometry.bitlines % 8, 0, "bitlines must be a multiple of 8");
        assert_eq!(
            geometry.bits_per_cell,
            params.bits_per_cell(),
            "geometry bits_per_cell disagrees with the chip parameters' state count"
        );
        assert!(
            params.fidelity != ReadFidelity::CellExact || params.n_states() == 4,
            "the cell-exact tier is MLC-only ({} states requested); \
             use PageAnalytic or BlockAggregate",
            params.n_states()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let storage = match params.fidelity {
            ReadFidelity::CellExact => Storage::Exact(
                (0..geometry.blocks)
                    .map(|_| {
                        Block::new(
                            geometry.wordlines_per_block,
                            geometry.bitlines,
                            &params,
                            &mut rng,
                        )
                    })
                    .collect(),
            ),
            ReadFidelity::PageAnalytic => Storage::Analytic {
                model: AnalyticModel::from_chip(&params, geometry.wordlines_per_block),
                blocks: (0..geometry.blocks)
                    .map(|_| {
                        AnalyticBlock::new(
                            geometry.wordlines_per_block,
                            geometry.bitlines,
                            geometry.bits_per_cell,
                        )
                    })
                    .collect(),
            },
            ReadFidelity::BlockAggregate => {
                let model = AnalyticModel::from_chip(&params, geometry.wordlines_per_block);
                let state = AggregateState::new(
                    geometry.blocks,
                    geometry.wordlines_per_block,
                    geometry.bitlines,
                    geometry.bits_per_cell,
                    &params,
                    &model,
                );
                Storage::Aggregate { model, state }
            }
        };
        Self { geometry, params, storage, rng, read_margin: None }
    }

    /// Tells the chip the decoder's per-page correction capability (error
    /// bits). The block-aggregate tier uses it to compute ECC-margin
    /// crossings analytically and fast-forward reads in between; without a
    /// margin every aggregate read samples live. Other tiers ignore it.
    pub fn set_read_margin(&mut self, margin: Option<u64>) {
        self.read_margin = margin;
    }

    /// The configured ECC-margin hint (see [`Chip::set_read_margin`]).
    pub fn read_margin(&self) -> Option<u64> {
        self.read_margin
    }

    /// Serializes the chip's full mutable state — fidelity tag, RNG stream,
    /// ECC-margin hint, and every block lane — into `w` (checkpointing
    /// support; see [`crate::wire`]). Config-derived constants (geometry,
    /// params, analytic model) are not written: restore targets a chip
    /// rebuilt from the same configuration.
    pub fn encode_state(&self, w: &mut crate::wire::Writer) {
        let tag: u8 = match self.params.fidelity {
            ReadFidelity::CellExact => 0,
            ReadFidelity::PageAnalytic => 1,
            ReadFidelity::BlockAggregate => 2,
        };
        w.put_u8(tag);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        match self.read_margin {
            Some(m) => {
                w.put_bool(true);
                w.put_u64(m);
            }
            None => w.put_bool(false),
        }
        match &self.storage {
            Storage::Exact(blocks) => {
                for b in blocks {
                    b.encode_state(w);
                }
            }
            Storage::Analytic { blocks, .. } => {
                for b in blocks {
                    b.encode_state(w);
                }
            }
            Storage::Aggregate { state, .. } => state.encode_state(w),
        }
    }

    /// Restores state serialized by [`Chip::encode_state`] into `self`,
    /// which must have been constructed from the same configuration
    /// (geometry, params, fidelity tier, any seed). After a successful
    /// restore the chip continues bit-identically to the checkpointed one.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SnapError::Mismatch`] when the snapshot's fidelity
    /// tier or block-lane shapes disagree with this chip, and the usual
    /// decode errors on truncated input.
    pub fn restore_state(
        &mut self,
        r: &mut crate::wire::Reader<'_>,
    ) -> Result<(), crate::wire::SnapError> {
        use crate::wire::SnapError;
        let tag = r.get_u8()?;
        let expected: u8 = match self.params.fidelity {
            ReadFidelity::CellExact => 0,
            ReadFidelity::PageAnalytic => 1,
            ReadFidelity::BlockAggregate => 2,
        };
        if tag != expected {
            return Err(SnapError::Mismatch(format!(
                "snapshot fidelity tag {tag} != chip tier {expected}"
            )));
        }
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64()?;
        }
        if rng_state == [0, 0, 0, 0] {
            return Err(SnapError::Mismatch("all-zero RNG state".into()));
        }
        let read_margin = if r.get_bool()? { Some(r.get_u64()?) } else { None };
        match &mut self.storage {
            Storage::Exact(blocks) => {
                for b in blocks.iter_mut() {
                    b.restore_state(r)?;
                }
            }
            Storage::Analytic { blocks, .. } => {
                for b in blocks.iter_mut() {
                    b.restore_state(r)?;
                }
            }
            Storage::Aggregate { state, .. } => state.restore_state(r)?,
        }
        self.rng = StdRng::from_state(rng_state);
        self.read_margin = read_margin;
        Ok(())
    }

    /// Creates a chip at an explicit fidelity tier (overriding
    /// [`ChipParams::fidelity`]).
    pub fn with_fidelity(
        geometry: Geometry,
        mut params: ChipParams,
        seed: u64,
        fidelity: ReadFidelity,
    ) -> Self {
        params.fidelity = fidelity;
        Self::new(geometry, params, seed)
    }

    /// The chip's geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The chip's model parameters.
    pub fn params(&self) -> &ChipParams {
        &self.params
    }

    /// The chip's fidelity tier.
    pub fn fidelity(&self) -> ReadFidelity {
        self.params.fidelity
    }

    fn block_ref(&self, block: u32) -> Result<&Block, FlashError> {
        self.geometry.check_block(block)?;
        match &self.storage {
            Storage::Exact(blocks) => Ok(&blocks[block as usize]),
            _ => Err(FlashError::FidelityUnsupported { op: "per-cell block access" }),
        }
    }

    /// Status snapshot of a block.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range.
    pub fn block_status(&self, block: u32) -> Result<BlockStatus, FlashError> {
        self.geometry.check_block(block)?;
        match &self.storage {
            Storage::Exact(blocks) => Ok(blocks[block as usize].status()),
            Storage::Analytic { model, blocks } => Ok(blocks[block as usize].status(model)),
            Storage::Aggregate { state, .. } => Ok(state.status(block as usize)),
        }
    }

    /// Direct read-only access to a block (oracle inspection for experiments
    /// and tests). Requires [`ReadFidelity::CellExact`].
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range or the chip is page-analytic.
    pub fn block(&self, block: u32) -> Result<&Block, FlashError> {
        self.block_ref(block)
    }

    /// Erases a block.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range.
    pub fn erase_block(&mut self, block: u32) -> Result<(), FlashError> {
        self.geometry.check_block(block)?;
        match &mut self.storage {
            Storage::Exact(blocks) => {
                let params = self.params.clone();
                blocks[block as usize].erase(&params, &mut self.rng);
            }
            Storage::Analytic { blocks, .. } => blocks[block as usize].erase(),
            Storage::Aggregate { model, state } => {
                state.erase(&self.params, model, block as usize);
            }
        }
        Ok(())
    }

    /// Adds `cycles` of prior wear to a block, leaving it erased (the
    /// paper's pre-wear methodology).
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range.
    pub fn cycle_block(&mut self, block: u32, cycles: u64) -> Result<(), FlashError> {
        self.geometry.check_block(block)?;
        match &mut self.storage {
            Storage::Exact(blocks) => {
                let params = self.params.clone();
                blocks[block as usize].pre_wear(&params, &mut self.rng, cycles);
            }
            Storage::Analytic { blocks, .. } => blocks[block as usize].pre_wear(cycles),
            Storage::Aggregate { model, state } => {
                state.pre_wear(&self.params, model, block as usize, cycles);
            }
        }
        Ok(())
    }

    /// Programs a page with packed data bits.
    ///
    /// # Errors
    ///
    /// See [`Block::program_page`].
    pub fn program_page(&mut self, block: u32, page: u32, data: &[u8]) -> Result<(), FlashError> {
        self.geometry.check_block(block)?;
        self.geometry.check_page(page)?;
        match &mut self.storage {
            Storage::Exact(blocks) => {
                let params = self.params.clone();
                blocks[block as usize].program_page(&params, &mut self.rng, page, data)
            }
            Storage::Analytic { blocks, .. } => blocks[block as usize].program_page(page, data),
            Storage::Aggregate { model, state } => {
                state.program_page(&self.params, model, block as usize, page, data)
            }
        }
    }

    /// Programs every page of a block with pseudo-random data derived from
    /// `data_seed` (the paper's characterization setup). Returns the seed's
    /// generator so callers can reproduce the data.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range or pages were already programmed.
    pub fn program_block_random(&mut self, block: u32, data_seed: u64) -> Result<(), FlashError> {
        self.geometry.check_block(block)?;
        let mut data_rng = StdRng::seed_from_u64(data_seed);
        let nbits = self.geometry.bits_per_page();
        for page in 0..self.geometry.pages_per_block() {
            let data = bits::random(&mut data_rng, nbits);
            self.program_page(block, page, &data)?;
        }
        Ok(())
    }

    /// Reads a page at the block's current references and Vpass; the read
    /// disturbs the rest of the block.
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range.
    pub fn read_page(&mut self, block: u32, page: u32) -> Result<ReadOutcome, FlashError> {
        self.geometry.check_block(block)?;
        let Self { params, storage, rng, read_margin, .. } = self;
        match storage {
            Storage::Exact(blocks) => {
                let params = params.clone();
                blocks[block as usize].read_page(&params, page, 0.0, true)
            }
            Storage::Analytic { model, blocks } => {
                blocks[block as usize].read_page(params, model, rng, page, true)
            }
            Storage::Aggregate { state, .. } => {
                state.read_page(rng, *read_margin, block as usize, page, true)
            }
        }
    }

    /// Reads a page at fully custom read references (each boundary moved
    /// independently), as read-reference optimization requires.
    ///
    /// On a page-analytic chip only the default references are served (the
    /// closed-form model has no per-boundary error decomposition).
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range, or with
    /// [`FlashError::FidelityUnsupported`] for non-default references on a
    /// page-analytic chip.
    pub fn read_page_with_refs(
        &mut self,
        block: u32,
        page: u32,
        refs: &crate::state::VoltageRefs,
    ) -> Result<ReadOutcome, FlashError> {
        self.geometry.check_block(block)?;
        match &mut self.storage {
            Storage::Exact(blocks) => {
                let params = self.params.clone();
                blocks[block as usize].read_page_with_refs(&params, page, refs, true)
            }
            Storage::Analytic { .. } | Storage::Aggregate { .. } => {
                if *refs == self.params.refs {
                    self.read_page(block, page)
                } else {
                    Err(FlashError::FidelityUnsupported { op: "custom-reference read" })
                }
            }
        }
    }

    /// Read-retry: reads a page with all references shifted by `shift`
    /// (the mechanism the paper uses to measure Vth distributions and to
    /// mimic Vpass changes on real chips, §2).
    ///
    /// Served at both fidelity tiers: the cell-exact chip classifies every
    /// cell against the shifted references; the page-analytic chip samples
    /// the retry around its closed-form shifted-RBER model (disturb errors
    /// decay with a positive shift, retention errors grow, and the
    /// misclassification floor follows the moved references).
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range.
    pub fn read_retry(
        &mut self,
        block: u32,
        page: u32,
        shift: f64,
    ) -> Result<RetryReadOutcome, FlashError> {
        self.geometry.check_block(block)?;
        let Self { params, storage, rng, .. } = self;
        let outcome = match storage {
            Storage::Exact(blocks) => {
                let params = params.clone();
                blocks[block as usize].read_page(&params, page, shift, true)?
            }
            Storage::Analytic { model, blocks } => {
                blocks[block as usize].read_page_shifted(params, model, rng, page, shift, true)?
            }
            Storage::Aggregate { model, state } => {
                state.read_page_shifted(params, model, rng, block as usize, page, shift, true)?
            }
        };
        Ok(RetryReadOutcome { shift, outcome })
    }

    /// Applies the disturb effect of `n` reads spread over a block in one
    /// batch.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range.
    pub fn apply_read_disturbs(&mut self, block: u32, n: u64) -> Result<(), FlashError> {
        self.geometry.check_block(block)?;
        match &mut self.storage {
            Storage::Exact(blocks) => {
                let params = self.params.clone();
                blocks[block as usize].apply_read_disturbs(&params, n);
            }
            Storage::Analytic { blocks, .. } => blocks[block as usize].apply_read_disturbs(n),
            Storage::Aggregate { state, .. } => state.apply_read_disturbs(block as usize, n),
        }
        Ok(())
    }

    /// Applies the disturb effect of `n` reads all targeting one wordline:
    /// its direct neighbours receive concentrated extra disturb, the target
    /// itself none (see [`Block::hammer_wordline`]).
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range.
    pub fn hammer_wordline(&mut self, block: u32, wordline: u32, n: u64) -> Result<(), FlashError> {
        self.geometry.check_block(block)?;
        self.geometry.check_wordline(wordline)?;
        match &mut self.storage {
            Storage::Exact(blocks) => {
                let params = self.params.clone();
                blocks[block as usize].hammer_wordline(&params, wordline, n);
            }
            Storage::Analytic { blocks, .. } => {
                blocks[block as usize].hammer_wordline(&self.params, wordline, n);
            }
            Storage::Aggregate { state, .. } => {
                state.hammer_wordline(block as usize, wordline, n);
            }
        }
        Ok(())
    }

    /// Oracle RBER of one wordline's programmed pages. On a page-analytic
    /// chip this is the closed-form expectation, rounded to whole bits.
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range.
    pub fn wordline_rber(
        &self,
        block: u32,
        wordline: u32,
    ) -> Result<crate::BitErrorStats, FlashError> {
        self.geometry.check_block(block)?;
        self.geometry.check_wordline(wordline)?;
        match &self.storage {
            Storage::Exact(blocks) => {
                Ok(blocks[block as usize].rber_oracle_wordline(&self.params, wordline))
            }
            Storage::Analytic { model, blocks } => {
                Ok(blocks[block as usize].rber_wordline_oracle(&self.params, model, wordline))
            }
            Storage::Aggregate { state, .. } => {
                Ok(state.rber_wordline_oracle(block as usize, wordline))
            }
        }
    }

    /// Advances the retention clock of every block.
    pub fn advance_days(&mut self, days: f64) {
        match &mut self.storage {
            Storage::Exact(blocks) => {
                for b in blocks {
                    b.advance_days(days);
                }
            }
            Storage::Analytic { blocks, .. } => {
                for b in blocks {
                    b.advance_days(days);
                }
            }
            Storage::Aggregate { model, state } => {
                for b in 0..self.geometry.blocks {
                    state.advance_days(&self.params, model, b as usize, days);
                }
            }
        }
    }

    /// Advances the retention clock of one block.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range.
    pub fn advance_block_days(&mut self, block: u32, days: f64) -> Result<(), FlashError> {
        self.geometry.check_block(block)?;
        match &mut self.storage {
            Storage::Exact(blocks) => blocks[block as usize].advance_days(days),
            Storage::Analytic { blocks, .. } => blocks[block as usize].advance_days(days),
            Storage::Aggregate { model, state } => {
                state.advance_days(&self.params, model, block as usize, days);
            }
        }
        Ok(())
    }

    /// Sets a block's pass-through voltage.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range or `vpass` is outside the supported
    /// tuning range.
    pub fn set_block_vpass(&mut self, block: u32, vpass: f64) -> Result<(), FlashError> {
        self.geometry.check_block(block)?;
        match &mut self.storage {
            Storage::Exact(blocks) => {
                let params = self.params.clone();
                blocks[block as usize].set_vpass(&params, vpass)
            }
            Storage::Analytic { model, blocks } => {
                blocks[block as usize].set_vpass(&self.params, model, vpass)
            }
            Storage::Aggregate { model, state } => {
                state.set_vpass(&self.params, model, block as usize, vpass)
            }
        }
    }

    /// A block's current pass-through voltage.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range.
    pub fn block_vpass(&self, block: u32) -> Result<f64, FlashError> {
        self.geometry.check_block(block)?;
        match &self.storage {
            Storage::Exact(blocks) => Ok(blocks[block as usize].vpass()),
            Storage::Analytic { blocks, .. } => Ok(blocks[block as usize].vpass()),
            Storage::Aggregate { state, .. } => Ok(state.vpass(block as usize)),
        }
    }

    /// Oracle RBER of a block (no disturb added by the measurement). On a
    /// page-analytic chip this is the closed-form expectation, rounded to
    /// whole bits.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range.
    pub fn block_rber(&self, block: u32) -> Result<BitErrorStats, FlashError> {
        self.geometry.check_block(block)?;
        match &self.storage {
            Storage::Exact(blocks) => Ok(blocks[block as usize].rber_oracle(&self.params)),
            Storage::Analytic { model, blocks } => {
                Ok(blocks[block as usize].rber_oracle(&self.params, model))
            }
            Storage::Aggregate { state, .. } => Ok(state.rber_oracle(block as usize)),
        }
    }

    /// Expected block RBER as a real number over the block's programmed
    /// pages: the per-cell oracle rate on a cell-exact chip, the *unrounded*
    /// closed-form expectation on a page-analytic chip. This is the quantity
    /// to compare across fidelity tiers — [`Chip::block_rber`] rounds to
    /// whole bits, which quantizes small expectations to zero.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range.
    pub fn block_rber_rate(&self, block: u32) -> Result<f64, FlashError> {
        self.geometry.check_block(block)?;
        match &self.storage {
            Storage::Exact(blocks) => Ok(blocks[block as usize].rber_oracle(&self.params).rate()),
            Storage::Analytic { model, blocks } => {
                let (expected, bits) = blocks[block as usize].rber_expectation(&self.params, model);
                Ok(if bits == 0 { 0.0 } else { expected / bits as f64 })
            }
            Storage::Aggregate { state, .. } => {
                let (expected, bits) = state.rber_expectation(block as usize);
                Ok(if bits == 0 { 0.0 } else { expected / bits as f64 })
            }
        }
    }

    /// Threshold-voltage histogram of a block (oracle; the experimental
    /// equivalent is an exhaustive read-retry sweep). Requires
    /// [`ReadFidelity::CellExact`].
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range or the chip is page-analytic.
    pub fn vth_histogram(&self, block: u32, bin_width: f64) -> Result<VthHistogram, FlashError> {
        let b = self.block_ref(block)?;
        assert!(bin_width > 0.0, "bin width must be positive");
        let min = -80.0;
        let max = crate::params::NOMINAL_VPASS + 40.0;
        let nbins = ((max - min) / bin_width).ceil() as usize;
        let mut hist = VthHistogram {
            bin_width,
            min,
            counts: vec![0; nbins],
            by_state: [vec![0; nbins], vec![0; nbins], vec![0; nbins], vec![0; nbins]],
            total: 0,
        };
        for (_, _, state, vth) in b.iter_cells_current(&self.params) {
            let bin = ((vth - min) / bin_width).floor();
            if bin >= 0.0 && (bin as usize) < nbins {
                let i = bin as usize;
                hist.counts[i] += 1;
                hist.by_state[state.index() as usize][i] += 1;
            }
            hist.total += 1;
        }
        Ok(hist)
    }

    /// Measures per-cell threshold voltages of a wordline via a read-retry
    /// sweep quantized at `step`. With `disturb`, the sweep's reads disturb
    /// the block (as on real hardware). Requires [`ReadFidelity::CellExact`].
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range or the chip is page-analytic.
    pub fn measure_wordline_vth(
        &mut self,
        block: u32,
        wordline: u32,
        step: f64,
        disturb: bool,
    ) -> Result<Vec<f64>, FlashError> {
        self.geometry.check_block(block)?;
        self.geometry.check_wordline(wordline)?;
        match &mut self.storage {
            Storage::Exact(blocks) => {
                let params = self.params.clone();
                blocks[block as usize].measure_wordline_vth(&params, wordline, step, disturb)
            }
            _ => Err(FlashError::FidelityUnsupported { op: "per-cell Vth measurement" }),
        }
    }

    /// Whether a page has been programmed since its block's last erase.
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range.
    pub fn is_page_programmed(&self, block: u32, page: u32) -> Result<bool, FlashError> {
        self.geometry.check_block(block)?;
        self.geometry.check_page(page)?;
        match &self.storage {
            Storage::Exact(blocks) => Ok(blocks[block as usize].is_page_programmed(page)),
            Storage::Analytic { blocks, .. } => Ok(blocks[block as usize].is_page_programmed(page)),
            Storage::Aggregate { state, .. } => Ok(state.is_page_programmed(block as usize, page)),
        }
    }

    /// Ground-truth programmed bits of a page (evaluation oracle for
    /// recovery experiments; a real controller does not have this).
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range or the page is unprogrammed.
    pub fn intended_page_bits(&self, block: u32, page: u32) -> Result<Vec<u8>, FlashError> {
        self.geometry.check_block(block)?;
        self.geometry.check_page(page)?;
        match &self.storage {
            Storage::Exact(blocks) => {
                let b = &blocks[block as usize];
                if !b.is_page_programmed(page) {
                    return Err(FlashError::PageNotProgrammed { page });
                }
                let addr = crate::geometry::PageAddr { block, page };
                let wl = addr.wordline();
                let kind = addr.kind();
                let nbits = self.geometry.bits_per_page();
                let mut data = bits::zeroed(nbits);
                for bl in 0..self.geometry.bitlines {
                    let st = b.cells().intended_state(wl, bl);
                    let bit = match kind {
                        crate::geometry::PageKind::Lsb => st.lsb(),
                        crate::geometry::PageKind::Msb => st.msb(),
                    };
                    bits::set_bit(&mut data, bl as usize, bit);
                }
                Ok(data)
            }
            Storage::Analytic { blocks, .. } => blocks[block as usize].intended_page_bits(page),
            Storage::Aggregate { .. } => {
                Err(FlashError::FidelityUnsupported { op: "page payload retrieval" })
            }
        }
    }

    /// Refreshes a block: saves the logical data, erases, and reprograms it
    /// (remapping-based refresh as assumed by the paper's 7-day interval).
    /// Retention age, read count, and disturb dose reset; wear increments.
    ///
    /// # Errors
    ///
    /// Fails if `block` is out of range.
    pub fn refresh_block(&mut self, block: u32) -> Result<(), FlashError> {
        self.geometry.check_block(block)?;
        // The aggregate tier keeps no payloads: refresh in place (same
        // semantics — wear increments, clocks and dose reset, data stays).
        if let Storage::Aggregate { model, state } = &mut self.storage {
            state.refresh_in_place(&self.params, model, block as usize);
            return Ok(());
        }
        let pages: Vec<(u32, Vec<u8>)> = (0..self.geometry.pages_per_block())
            .filter(|p| self.is_page_programmed(block, *p).unwrap_or(false))
            .map(|p| (p, self.intended_page_bits(block, p).expect("programmed page")))
            .collect();
        self.erase_block(block)?;
        for (page, data) in pages {
            self.program_page(block, page, &data)?;
        }
        Ok(())
    }

    /// Uniformly random page index (helper for workload-driven tests).
    pub fn random_page(&mut self) -> u32 {
        self.rng.gen_range(0..self.geometry.pages_per_block())
    }
}

/// Convenience: the four states with their default distribution parameters,
/// for plotting figure legends.
pub fn state_legend(params: &ChipParams) -> Vec<(CellState, f64, f64)> {
    ALL_STATES
        .iter()
        .map(|&s| {
            let d = params.states[s.index() as usize];
            (s, d.mean, d.sigma)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NOMINAL_VPASS;

    fn test_chip() -> Chip {
        Chip::new(Geometry::small(), ChipParams::default(), 1234)
    }

    fn analytic_chip() -> Chip {
        Chip::with_fidelity(
            Geometry::small(),
            ChipParams::default(),
            1234,
            ReadFidelity::PageAnalytic,
        )
    }

    #[test]
    fn geometry_validation_on_construction() {
        let result = std::panic::catch_unwind(|| {
            Chip::new(
                Geometry { blocks: 1, wordlines_per_block: 4, bitlines: 12, bits_per_cell: 2 },
                ChipParams::default(),
                0,
            )
        });
        assert!(result.is_err(), "non-multiple-of-8 bitlines must panic");
    }

    #[test]
    fn out_of_range_addresses_error() {
        let mut chip = test_chip();
        assert!(chip.erase_block(99).is_err());
        assert!(chip.read_page(0, 999).is_err());
        assert!(chip.set_block_vpass(99, 500.0).is_err());
        assert!(chip.block_status(99).is_err());
    }

    #[test]
    fn program_and_read_round_trip() {
        let mut chip = test_chip();
        chip.program_block_random(0, 55).unwrap();
        let truth = chip.intended_page_bits(0, 3).unwrap();
        let out = chip.read_page(0, 3).unwrap();
        assert_eq!(bits::hamming(&truth, &out.data), out.stats.errors);
        assert!(out.stats.rate() < 1e-2);
    }

    #[test]
    fn unprogrammed_page_oracle_errors() {
        let chip = test_chip();
        assert!(matches!(chip.intended_page_bits(0, 0), Err(FlashError::PageNotProgrammed { .. })));
    }

    #[test]
    fn refresh_preserves_data_and_resets_clocks() {
        let mut chip = test_chip();
        chip.program_block_random(0, 9).unwrap();
        let before = chip.intended_page_bits(0, 5).unwrap();
        chip.apply_read_disturbs(0, 10_000).unwrap();
        chip.advance_days(7.0);
        let pe_before = chip.block_status(0).unwrap().pe_cycles;
        chip.refresh_block(0).unwrap();
        let st = chip.block_status(0).unwrap();
        assert_eq!(st.pe_cycles, pe_before + 1);
        assert_eq!(st.reads_since_erase, 0);
        assert_eq!(st.age_days, 0.0);
        let after = chip.intended_page_bits(0, 5).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut chip = Chip::new(Geometry::small(), ChipParams::default(), 777);
            chip.cycle_block(1, 5_000).unwrap();
            chip.program_block_random(1, 3).unwrap();
            chip.apply_read_disturbs(1, 50_000).unwrap();
            chip.block_rber(1).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn histogram_shows_four_modes() {
        let mut chip = Chip::new(
            Geometry { blocks: 1, wordlines_per_block: 16, bitlines: 2048, bits_per_cell: 2 },
            ChipParams::default(),
            5,
        );
        chip.program_block_random(0, 1).unwrap();
        let hist = chip.vth_histogram(0, 4.0).unwrap();
        assert_eq!(hist.total as usize, 16 * 2048);
        // State means near the programming targets.
        assert!((hist.state_mean(CellState::Er) - 40.0).abs() < 6.0);
        assert!((hist.state_mean(CellState::P1) - 160.0).abs() < 6.0);
        assert!((hist.state_mean(CellState::P2) - 290.0).abs() < 6.0);
        assert!((hist.state_mean(CellState::P3) - 420.0).abs() < 6.0);
        // PDF integrates to ~1.
        let integral: f64 = (0..hist.counts.len()).map(|i| hist.pdf(i) * hist.bin_width).sum();
        assert!((integral - 1.0).abs() < 1e-6);
    }

    #[test]
    fn read_retry_shift_changes_classification() {
        let mut chip = test_chip();
        chip.program_block_random(0, 2).unwrap();
        // A large negative shift reads many cells as higher states: errors rise.
        let base = chip.read_retry(0, 0, 0.0).unwrap().outcome.stats.errors;
        let shifted = chip.read_retry(0, 0, -60.0).unwrap().outcome.stats.errors;
        assert!(shifted > base);
    }

    #[test]
    fn disturb_then_rber_increases_with_reads_at_high_wear() {
        let mut chip = Chip::new(Geometry::characterization(), ChipParams::default(), 99);
        chip.cycle_block(0, 8_000).unwrap();
        chip.program_block_random(0, 4).unwrap();
        let r0 = chip.block_rber(0).unwrap().rate();
        chip.apply_read_disturbs(0, 100_000).unwrap();
        let r1 = chip.block_rber(0).unwrap().rate();
        chip.apply_read_disturbs(0, 400_000).unwrap();
        let r2 = chip.block_rber(0).unwrap().rate();
        assert!(r0 < r1 && r1 < r2, "{r0} {r1} {r2}");
    }

    #[test]
    fn vpass_at_nominal_by_default() {
        let chip = test_chip();
        assert_eq!(chip.block_vpass(0).unwrap(), NOMINAL_VPASS);
    }

    #[test]
    fn state_legend_has_four_entries() {
        let legend = state_legend(&ChipParams::default());
        assert_eq!(legend.len(), 4);
        assert_eq!(legend[0].0, CellState::Er);
    }

    #[test]
    fn hammer_wordline_validates_addresses() {
        let mut chip = test_chip();
        assert!(chip.hammer_wordline(0, 0, 100).is_ok());
        assert!(chip.hammer_wordline(99, 0, 100).is_err());
        assert!(chip.hammer_wordline(0, 999, 100).is_err());
        assert!(chip.wordline_rber(0, 999).is_err());
    }

    #[test]
    fn hammering_counts_as_reads() {
        let mut chip = test_chip();
        chip.program_block_random(0, 1).unwrap();
        chip.hammer_wordline(0, 2, 5_000).unwrap();
        assert_eq!(chip.block_status(0).unwrap().reads_since_erase, 5_000);
    }

    #[test]
    fn custom_refs_read_matches_default_at_defaults() {
        let mut chip = test_chip();
        chip.program_block_random(0, 3).unwrap();
        let default_refs = chip.params().refs;
        let a = chip.read_page_with_refs(0, 4, &default_refs).unwrap();
        let b = chip.read_page(0, 4).unwrap();
        assert_eq!(a.data, b.data);
        // Wildly wrong references produce many errors.
        let bad = crate::state::VoltageRefs::new(10.0, 20.0, 30.0);
        let c = chip.read_page_with_refs(0, 4, &bad).unwrap();
        assert!(c.stats.errors > a.stats.errors + 100);
    }

    #[test]
    fn wordline_rber_consistent_with_block_rber() {
        let mut chip = Chip::new(Geometry::characterization(), ChipParams::default(), 8);
        chip.cycle_block(0, 10_000).unwrap();
        chip.program_block_random(0, 8).unwrap();
        chip.apply_read_disturbs(0, 200_000).unwrap();
        let total: crate::BitErrorStats =
            (0..64).map(|wl| chip.wordline_rber(0, wl).unwrap()).sum();
        let block = chip.block_rber(0).unwrap();
        assert_eq!(total, block, "per-wordline sums must equal the block oracle");
    }

    #[test]
    fn analytic_chip_serves_reads_and_counters() {
        let mut chip = analytic_chip();
        assert_eq!(chip.fidelity(), ReadFidelity::PageAnalytic);
        chip.program_block_random(0, 55).unwrap();
        let truth = chip.intended_page_bits(0, 3).unwrap();
        let out = chip.read_page(0, 3).unwrap();
        assert_eq!(bits::hamming(&truth, &out.data), out.stats.errors);
        assert_eq!(chip.block_status(0).unwrap().reads_since_erase, 1);
        // Refresh works from stored payloads.
        chip.refresh_block(0).unwrap();
        assert_eq!(chip.intended_page_bits(0, 3).unwrap(), truth);
        assert_eq!(chip.block_status(0).unwrap().reads_since_erase, 0);
    }

    #[test]
    fn analytic_chip_is_deterministic_given_seed() {
        let run = || {
            let mut chip = analytic_chip();
            chip.cycle_block(1, 8_000).unwrap();
            chip.program_block_random(1, 3).unwrap();
            let mut errors = 0;
            for page in 0..chip.geometry().pages_per_block() {
                errors += chip.read_page(1, page).unwrap().stats.errors;
            }
            (errors, chip.block_rber(1).unwrap())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn analytic_chip_rejects_per_cell_oracles() {
        let mut chip = analytic_chip();
        chip.program_block_random(0, 1).unwrap();
        assert!(matches!(chip.vth_histogram(0, 4.0), Err(FlashError::FidelityUnsupported { .. })));
        assert!(matches!(
            chip.measure_wordline_vth(0, 0, 1.0, false),
            Err(FlashError::FidelityUnsupported { .. })
        ));
        assert!(matches!(chip.block(0), Err(FlashError::FidelityUnsupported { .. })));
        // Default refs and zero shift are served.
        let refs = chip.params().refs;
        assert!(chip.read_page_with_refs(0, 0, &refs).is_ok());
        assert!(chip.read_retry(0, 0, 0.0).is_ok());
    }

    #[test]
    fn analytic_chip_serves_shifted_retry_reads() {
        let mut chip = analytic_chip();
        chip.cycle_block(0, 8_000).unwrap();
        chip.program_block_random(0, 2).unwrap();
        chip.apply_read_disturbs(0, 800_000).unwrap();
        // Average several sampled reads per shift: a modest positive shift
        // must recover disturb errors, a negative one must add errors.
        let mean_errors = |chip: &mut Chip, shift: f64| -> f64 {
            (0..24).map(|_| chip.read_retry(0, 3, shift).unwrap().outcome.stats.errors).sum::<u64>()
                as f64
                / 24.0
        };
        let base = mean_errors(&mut chip, 0.0);
        let raised = mean_errors(&mut chip, 8.0);
        let lowered = mean_errors(&mut chip, -12.0);
        assert!(raised < base, "positive retry shift must recover: {base} -> {raised}");
        assert!(lowered > base, "negative retry shift must hurt: {base} -> {lowered}");
    }

    fn aggregate_chip() -> Chip {
        Chip::with_fidelity(
            Geometry::small(),
            ChipParams::default(),
            1234,
            ReadFidelity::BlockAggregate,
        )
    }

    #[test]
    fn aggregate_chip_serves_reads_and_counters() {
        let mut chip = aggregate_chip();
        assert_eq!(chip.fidelity(), ReadFidelity::BlockAggregate);
        chip.program_block_random(0, 55).unwrap();
        assert!(chip.is_page_programmed(0, 3).unwrap());
        let out = chip.read_page(0, 3).unwrap();
        assert!(out.data.is_empty(), "aggregate reads carry no payload");
        assert_eq!(out.stats.bits, chip.geometry().bits_per_page() as u64);
        assert_eq!(chip.block_status(0).unwrap().reads_since_erase, 1);
        // Refresh needs no payloads: wear increments, clocks reset, data stays.
        chip.apply_read_disturbs(0, 10_000).unwrap();
        chip.advance_days(7.0);
        let pe_before = chip.block_status(0).unwrap().pe_cycles;
        chip.refresh_block(0).unwrap();
        let st = chip.block_status(0).unwrap();
        assert_eq!(st.pe_cycles, pe_before + 1);
        assert_eq!(st.reads_since_erase, 0);
        assert_eq!(st.age_days, 0.0);
        assert!(chip.is_page_programmed(0, 3).unwrap());
    }

    #[test]
    fn aggregate_chip_rejects_per_cell_oracles_and_payloads() {
        let mut chip = aggregate_chip();
        chip.program_block_random(0, 1).unwrap();
        assert!(matches!(chip.vth_histogram(0, 4.0), Err(FlashError::FidelityUnsupported { .. })));
        assert!(matches!(
            chip.measure_wordline_vth(0, 0, 1.0, false),
            Err(FlashError::FidelityUnsupported { .. })
        ));
        assert!(matches!(chip.block(0), Err(FlashError::FidelityUnsupported { .. })));
        assert!(matches!(
            chip.intended_page_bits(0, 0),
            Err(FlashError::FidelityUnsupported { .. })
        ));
        // Default refs and shifted retries are served.
        let refs = chip.params().refs;
        assert!(chip.read_page_with_refs(0, 0, &refs).is_ok());
        assert!(chip.read_retry(0, 0, 5.0).is_ok());
    }

    #[test]
    fn aggregate_chip_is_deterministic_given_seed() {
        let run = || {
            let mut chip = aggregate_chip();
            chip.cycle_block(1, 8_000).unwrap();
            chip.program_block_random(1, 3).unwrap();
            let mut errors = 0;
            for _ in 0..50 {
                for page in 0..chip.geometry().pages_per_block() {
                    errors += chip.read_page(1, page).unwrap().stats.errors;
                }
            }
            (errors, chip.block_rber(1).unwrap())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn aggregate_chip_margin_hint_enables_fast_forward() {
        // With a generous ECC-margin hint a fresh block stays far from the
        // margin, so reads are served from the per-block summary — the
        // error count is frozen between refresh horizons instead of
        // resampling noise every read.
        let mut chip = aggregate_chip();
        chip.set_read_margin(Some(40));
        assert_eq!(chip.read_margin(), Some(40));
        chip.program_block_random(0, 9).unwrap();
        let first = chip.read_page(0, 0).unwrap().stats.errors;
        let next = chip.read_page(0, 0).unwrap().stats.errors;
        assert_eq!(first, next, "summary-served reads are constant within a horizon");
        // Without a hint the chip must assume a standalone caller and sample.
        chip.set_read_margin(None);
        assert!(chip.read_page(0, 0).is_ok());
    }
}
