//! Read-path fidelity tiers.
//!
//! The simulator serves two kinds of questions with very different cost
//! profiles:
//!
//! * **Characterization** (Figs. 2–6, 10, RDR recovery) needs per-cell
//!   threshold voltages — Vth histograms, read-retry sweeps, per-cell
//!   disturb susceptibility. Only the Monte-Carlo cell model can answer
//!   these, at O(cells) per page read.
//! * **SSD-scale evaluation** (sustained-traffic replay, mitigation
//!   lifetime comparisons) only needs statistically faithful per-page
//!   error counts. The closed-form [`crate::analytic`] model — already
//!   calibrated against the Monte-Carlo chip by the calibration suite —
//!   answers these at O(errors) per page read.
//!
//! [`ReadFidelity`] selects the tier a [`crate::Chip`] is built with (via
//! [`crate::ChipParams::fidelity`]); the knob threads unchanged through
//! `rd_ftl::SsdConfig` → `rd_ftl::Die` → `rd_engine::EngineConfig`.
//!
//! # Tier contract
//!
//! | Operation | `CellExact` | `PageAnalytic` | `BlockAggregate` |
//! |---|---|---|---|
//! | `read_page`, `program_page`, `erase`, refresh | per-cell Monte-Carlo | sampled from the analytic model | cached per-block summary, sampled only near events |
//! | `block_rber` / `wordline_rber` | per-cell oracle | closed-form expectation | closed-form expectation (block-level) |
//! | disturb accounting | per-read dose updates | batched per-(block, wordline) counters, folded lazily | fold-free per-block accumulator (slope applied at read time) |
//! | `ReadReclaim`, Vpass Tuning, refresh policies | exact | fully supported (counter/probe driven) | fully supported (counter/probe driven) |
//! | read-retry sweeps (`read_retry`) | exact | sampled at the shifted reference | sampled at the shifted reference |
//! | page payloads (`intended_page_bits`, read data) | exact bytes | exact bytes | empty (error counts only) |
//! | Vth histograms, RDR, per-cell oracles | exact | [`crate::FlashError::FidelityUnsupported`] | [`crate::FlashError::FidelityUnsupported`] |
//!
//! `CellExact` is the default everywhere and is bit-for-bit identical to
//! the behaviour before the tier existed (the golden-run suite enforces
//! this). `PageAnalytic` is deterministic per seed and bit-identical for
//! any engine worker-thread count, but produces a *different* (sampled)
//! error stream than `CellExact` by construction. `BlockAggregate` shares
//! those determinism guarantees while serving most host reads without
//! touching the RNG at all.

/// Fidelity tier of a chip's read path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadFidelity {
    /// Per-cell Monte-Carlo simulation (the default): every read evaluates
    /// each cell's threshold voltage. Exact, supports every characterization
    /// oracle, O(cells) per page read.
    #[default]
    CellExact,
    /// Closed-form analytic error model: reads sample an error count and
    /// error positions from the calibrated RBER model (per-block P/E,
    /// read-disturb count, retention age, and Vpass as inputs) using the
    /// chip's seeded RNG. Statistically faithful, O(errors) per page read;
    /// per-cell oracles are unavailable.
    PageAnalytic,
    /// Event-driven per-block aggregate model: a block's error state is a
    /// closed-form function of (reads-since-erase, P/E count, retention
    /// time, Vpass), advanced lazily. Host reads that cannot change the
    /// ECC outcome are served from a precomputed per-block error summary
    /// without touching the RNG; error samples are materialized only at
    /// the *fast-forward events*:
    ///
    /// * **ECC-margin crossings**, computed analytically — the block's
    ///   expected error count approaches the decoder's correction
    ///   capability (the chip learns the margin via
    ///   [`crate::Chip::set_read_margin`]);
    /// * **Vpass changes** ([`crate::Chip::set_block_vpass`]) — any
    ///   relaxed pass-through voltage makes blocked-bitline sensing
    ///   probabilistic, so reads sample live from then on;
    /// * **policy probes** at relaxed Vpass (Vpass Tuning's
    ///   blocked-bitline zero counting) — served by the same live path;
    /// * **recovery-ladder entry** ([`crate::Chip::read_retry`]) — retry
    ///   reads at shifted references are always sampled so escalation
    ///   behaves like the other tiers;
    /// * **bulk disturb / retention / wear updates**
    ///   (`apply_read_disturbs`, `advance_days`, erase, program) — the
    ///   cached summary is invalidated and recomputed at the next read.
    ///
    /// Between events a read costs O(1) with no RNG draw and no payload
    /// allocation. Read payloads are empty at this tier — only error
    /// counts and blocked-bitline counts are modeled.
    BlockAggregate,
}

impl ReadFidelity {
    /// Stable lowercase identifier (used in benchmark JSON rows and CLI
    /// arguments).
    pub fn as_str(self) -> &'static str {
        match self {
            ReadFidelity::CellExact => "cell-exact",
            ReadFidelity::PageAnalytic => "page-analytic",
            ReadFidelity::BlockAggregate => "block-aggregate",
        }
    }
}

impl std::fmt::Display for ReadFidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ReadFidelity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cell-exact" | "exact" => Ok(ReadFidelity::CellExact),
            "page-analytic" | "analytic" => Ok(ReadFidelity::PageAnalytic),
            "block-aggregate" | "aggregate" => Ok(ReadFidelity::BlockAggregate),
            other => Err(format!("unknown fidelity tier: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cell_exact() {
        assert_eq!(ReadFidelity::default(), ReadFidelity::CellExact);
    }

    #[test]
    fn round_trips_through_strings() {
        for tier in
            [ReadFidelity::CellExact, ReadFidelity::PageAnalytic, ReadFidelity::BlockAggregate]
        {
            assert_eq!(tier.as_str().parse::<ReadFidelity>().unwrap(), tier);
            assert_eq!(tier.to_string(), tier.as_str());
        }
        assert_eq!("analytic".parse::<ReadFidelity>().unwrap(), ReadFidelity::PageAnalytic);
        assert_eq!("aggregate".parse::<ReadFidelity>().unwrap(), ReadFidelity::BlockAggregate);
        assert!("mlc".parse::<ReadFidelity>().is_err());
    }
}
