//! Read-path fidelity tiers.
//!
//! The simulator serves two kinds of questions with very different cost
//! profiles:
//!
//! * **Characterization** (Figs. 2–6, 10, RDR recovery) needs per-cell
//!   threshold voltages — Vth histograms, read-retry sweeps, per-cell
//!   disturb susceptibility. Only the Monte-Carlo cell model can answer
//!   these, at O(cells) per page read.
//! * **SSD-scale evaluation** (sustained-traffic replay, mitigation
//!   lifetime comparisons) only needs statistically faithful per-page
//!   error counts. The closed-form [`crate::analytic`] model — already
//!   calibrated against the Monte-Carlo chip by the calibration suite —
//!   answers these at O(errors) per page read.
//!
//! [`ReadFidelity`] selects the tier a [`crate::Chip`] is built with (via
//! [`crate::ChipParams::fidelity`]); the knob threads unchanged through
//! `rd_ftl::SsdConfig` → `rd_ftl::Die` → `rd_engine::EngineConfig`.
//!
//! # Tier contract
//!
//! | Operation | `CellExact` | `PageAnalytic` |
//! |---|---|---|
//! | `read_page`, `program_page`, `erase`, refresh | per-cell Monte-Carlo | sampled from the analytic model |
//! | `block_rber` / `wordline_rber` | per-cell oracle | closed-form expectation |
//! | disturb accounting | per-read dose updates | batched per-(block, wordline) counters, folded lazily |
//! | `ReadReclaim`, Vpass Tuning, refresh policies | exact | fully supported (counter/probe driven) |
//! | Vth histograms, read-retry sweeps, RDR, per-cell oracles | exact | [`crate::FlashError::FidelityUnsupported`] |
//!
//! `CellExact` is the default everywhere and is bit-for-bit identical to
//! the behaviour before the tier existed (the golden-run suite enforces
//! this). `PageAnalytic` is deterministic per seed and bit-identical for
//! any engine worker-thread count, but produces a *different* (sampled)
//! error stream than `CellExact` by construction.

/// Fidelity tier of a chip's read path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadFidelity {
    /// Per-cell Monte-Carlo simulation (the default): every read evaluates
    /// each cell's threshold voltage. Exact, supports every characterization
    /// oracle, O(cells) per page read.
    #[default]
    CellExact,
    /// Closed-form analytic error model: reads sample an error count and
    /// error positions from the calibrated RBER model (per-block P/E,
    /// read-disturb count, retention age, and Vpass as inputs) using the
    /// chip's seeded RNG. Statistically faithful, O(errors) per page read;
    /// per-cell oracles are unavailable.
    PageAnalytic,
}

impl ReadFidelity {
    /// Stable lowercase identifier (used in benchmark JSON rows and CLI
    /// arguments).
    pub fn as_str(self) -> &'static str {
        match self {
            ReadFidelity::CellExact => "cell-exact",
            ReadFidelity::PageAnalytic => "page-analytic",
        }
    }
}

impl std::fmt::Display for ReadFidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ReadFidelity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cell-exact" | "exact" => Ok(ReadFidelity::CellExact),
            "page-analytic" | "analytic" => Ok(ReadFidelity::PageAnalytic),
            other => Err(format!("unknown fidelity tier: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cell_exact() {
        assert_eq!(ReadFidelity::default(), ReadFidelity::CellExact);
    }

    #[test]
    fn round_trips_through_strings() {
        for tier in [ReadFidelity::CellExact, ReadFidelity::PageAnalytic] {
            assert_eq!(tier.as_str().parse::<ReadFidelity>().unwrap(), tier);
            assert_eq!(tier.to_string(), tier.as_str());
        }
        assert_eq!("analytic".parse::<ReadFidelity>().unwrap(), ReadFidelity::PageAnalytic);
        assert!("mlc".parse::<ReadFidelity>().is_err());
    }
}
