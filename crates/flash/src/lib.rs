//! # rd-flash — a cell-accurate MLC NAND flash memory simulator
//!
//! This crate is the device substrate for the reproduction of
//! *Read Disturb Errors in MLC NAND Flash Memory: Characterization,
//! Mitigation, and Recovery* (Cai et al., DSN 2015). The paper characterizes
//! real 2Y-nm MLC chips on an FPGA platform; this crate replaces that
//! hardware with a simulator that models each physical effect the paper
//! measures:
//!
//! * **Threshold-voltage (Vth) distributions** — each cell stores one of four
//!   states (ER, P1, P2, P3) as a normalized threshold voltage on a scale
//!   where GND = 0 and the nominal pass-through voltage `Vpass` = 512
//!   (the paper's normalization, §2).
//! * **Program/erase (P/E) cycling noise** — distribution widening and
//!   misprogram errors that grow with wear.
//! * **Retention loss** — charge leakage that lowers Vth over time, with
//!   per-cell leak-rate variation.
//! * **Read disturb** — every read weakly programs the *unread* cells of the
//!   block; the shift is larger for lower-Vth cells, grows with wear, and is
//!   exponentially sensitive to `Vpass` (the paper's key findings, §2.1–2.3).
//! * **Pass-through errors** — lowering `Vpass` below the highest stored Vth
//!   blocks bitlines and produces read errors that do *not* alter cell state
//!   (§2.4).
//!
//! Two levels of fidelity are provided and kept consistent by tests:
//!
//! 1. [`Chip`] / [`Block`] / [`CellArray`] — Monte-Carlo, per-cell simulation
//!    used for the characterization experiments (Figs. 2–6, 10).
//! 2. [`AnalyticModel`] — closed-form RBER model used at SSD scale
//!    (endurance evaluation, Fig. 8), calibrated to the paper's reported
//!    curves (see `DESIGN.md` §4).
//!
//! A [`Chip`] itself can be built at any of three tiers via
//! [`ReadFidelity`]: the default [`ReadFidelity::CellExact`] runs the
//! per-cell simulation, [`ReadFidelity::PageAnalytic`] serves page reads
//! from the calibrated closed-form model at O(errors) per read, and
//! [`ReadFidelity::BlockAggregate`] fast-forwards closed-form per-block
//! state between interesting events at O(1) per read — the tier
//! billion-op lifetime replay uses (see [`fidelity`] for the contract
//! between the tiers).
//!
//! ## Quick example
//!
//! ```
//! use rd_flash::{Chip, ChipParams, Geometry};
//!
//! # fn main() -> Result<(), rd_flash::FlashError> {
//! let geometry = Geometry::small(); // small block for doc tests
//! let mut chip = Chip::new(geometry, ChipParams::default(), 42);
//! chip.cycle_block(0, 1_000)?;              // pre-wear: 1K P/E cycles
//! chip.program_block_random(0, 7)?;         // program pseudo-random data
//! chip.apply_read_disturbs(0, 100_000)?;    // 100K reads to the block
//! let rber = chip.block_rber(0)?;
//! assert!(rber.rate() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod bits;
pub mod cell_array;
pub mod chip;
pub mod chips;
pub mod error;
pub mod fidelity;
pub mod geometry;
pub mod math;
pub mod noise;
pub mod params;
pub mod state;
pub mod wire;

mod aggregate_block;
mod analytic_block;
mod block;

pub use analytic::{gaussian_tail_floor, AnalyticModel, AnalyticParams, RberBreakdown};
pub use block::{Block, BlockStatus};
pub use cell_array::CellArray;
pub use chip::{Chip, ReadOutcome, RetryReadOutcome, VthHistogram};
pub use error::FlashError;
pub use fidelity::ReadFidelity;
pub use geometry::{CellAddr, Geometry, PageAddr, PageKind, WordlineAddr};
pub use params::{ChipParams, StateParams, NOMINAL_VPASS};
pub use state::{CellState, StateRegion, VoltageRefs};
pub use wire::SnapError;

/// Measured raw bit error statistics for a region of the chip.
///
/// Returned by read operations; `errors / bits` is the raw bit error rate
/// (RBER) the paper plots on every characterization figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitErrorStats {
    /// Number of raw bit errors observed (sensed bit != programmed bit).
    pub errors: u64,
    /// Total number of bits read.
    pub bits: u64,
}

impl BitErrorStats {
    /// Creates statistics from an error count and a total bit count.
    pub fn new(errors: u64, bits: u64) -> Self {
        Self { errors, bits }
    }

    /// The raw bit error rate. Returns 0 when no bits were read.
    pub fn rate(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }

    /// Merges two measurements (e.g. across pages of a block).
    pub fn merge(self, other: Self) -> Self {
        Self { errors: self.errors + other.errors, bits: self.bits + other.bits }
    }
}

impl std::ops::Add for BitErrorStats {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.merge(rhs)
    }
}

impl std::iter::Sum for BitErrorStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Self::merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_error_stats_rate() {
        let s = BitErrorStats::new(5, 1000);
        assert!((s.rate() - 0.005).abs() < 1e-12);
        assert_eq!(BitErrorStats::default().rate(), 0.0);
    }

    #[test]
    fn bit_error_stats_merge_and_sum() {
        let a = BitErrorStats::new(1, 10);
        let b = BitErrorStats::new(2, 20);
        let m = a + b;
        assert_eq!(m, BitErrorStats::new(3, 30));
        let s: BitErrorStats = vec![a, b, m].into_iter().sum();
        assert_eq!(s, BitErrorStats::new(6, 60));
    }
}
