//! Chip geometry: blocks, wordlines, pages, bitlines, and addressing.
//!
//! The paper's device model (§1–2): a flash **block** is a 2-D array whose
//! columns are **bitlines** and whose rows are **wordlines**. In 2-bit MLC,
//! each wordline stores two logical **pages** — the LSB page and the MSB
//! page — one bit of every cell belonging to each. A read of one wordline
//! applies `Vpass` to every *other* wordline of the block, which is the root
//! cause of read disturb.
//!
//! [`Geometry::bits_per_cell`] generalizes the pages-per-wordline count so
//! the chip database can describe TLC (3) and QLC (4) parts; the
//! [`PageAddr`] LSB/MSB helpers remain the MLC vocabulary the cell-exact
//! tier uses, while [`Geometry::wordline_of_page`]/[`Geometry::page_bit`]
//! address any state count.

use crate::error::FlashError;

/// Which of the two MLC pages of a wordline is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageKind {
    /// Page backed by the LSBs of a wordline (single `Vb` comparison).
    Lsb,
    /// Page backed by the MSBs of a wordline (`Va`/`Vc` comparisons).
    Msb,
}

impl PageKind {
    /// The two page kinds in program order (LSB is programmed first on real
    /// MLC parts).
    pub const ALL: [PageKind; 2] = [PageKind::Lsb, PageKind::Msb];
}

/// Shape of a simulated chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of blocks on the chip.
    pub blocks: u32,
    /// Wordlines per block.
    pub wordlines_per_block: u32,
    /// Cells per wordline (= number of bitlines of the block).
    pub bitlines: u32,
    /// Bits stored per cell (= pages per wordline): 2 for MLC, 3 for TLC,
    /// 4 for QLC. Must match the chip parameters' state count.
    pub bits_per_cell: u32,
}

impl Geometry {
    /// A realistic single-die MLC shape: 64 wordlines × 16,384 bitlines
    /// (2 KiB per page, 128 pages and 256 KiB of data per block).
    pub fn standard() -> Self {
        Self { blocks: 8, wordlines_per_block: 64, bitlines: 16 * 1024, bits_per_cell: 2 }
    }

    /// A small MLC shape for unit tests and doc tests.
    pub fn small() -> Self {
        Self { blocks: 4, wordlines_per_block: 8, bitlines: 512, bits_per_cell: 2 }
    }

    /// A single-block MLC shape sized for characterization experiments:
    /// keeps per-figure Monte-Carlo runs fast while leaving enough cells
    /// (64 × 4096 = 256 Ki cells) for RBER resolution down to ~1e-5.
    pub fn characterization() -> Self {
        Self { blocks: 1, wordlines_per_block: 64, bitlines: 4096, bits_per_cell: 2 }
    }

    /// Pages per block (`bits_per_cell` pages per wordline).
    pub fn pages_per_block(&self) -> u32 {
        self.wordlines_per_block * self.bits_per_cell
    }

    /// Cells per block.
    pub fn cells_per_block(&self) -> usize {
        self.wordlines_per_block as usize * self.bitlines as usize
    }

    /// Bits of user data per page (one bit per cell of the wordline).
    pub fn bits_per_page(&self) -> usize {
        self.bitlines as usize
    }

    /// Bits of user data per block.
    pub fn bits_per_block(&self) -> usize {
        self.cells_per_block() * self.bits_per_cell as usize
    }

    /// The wordline backing a page index (pages of a wordline are
    /// consecutive: page `w * bits_per_cell + k` is bit-kind `k` of
    /// wordline `w`).
    pub fn wordline_of_page(&self, page: u32) -> u32 {
        page / self.bits_per_cell
    }

    /// The bit position within the cell (0 = LSB page) a page index maps to.
    pub fn page_bit(&self, page: u32) -> u32 {
        page % self.bits_per_cell
    }

    /// Validates a block index.
    pub fn check_block(&self, block: u32) -> Result<(), FlashError> {
        if block < self.blocks {
            Ok(())
        } else {
            Err(FlashError::BlockOutOfRange { block, blocks: self.blocks })
        }
    }

    /// Validates a wordline index.
    pub fn check_wordline(&self, wordline: u32) -> Result<(), FlashError> {
        if wordline < self.wordlines_per_block {
            Ok(())
        } else {
            Err(FlashError::WordlineOutOfRange { wordline, wordlines: self.wordlines_per_block })
        }
    }

    /// Validates a page index within a block.
    pub fn check_page(&self, page: u32) -> Result<(), FlashError> {
        if page < self.pages_per_block() {
            Ok(())
        } else {
            Err(FlashError::PageOutOfRange { page, pages: self.pages_per_block() })
        }
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::standard()
    }
}

/// Address of a wordline within the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordlineAddr {
    /// Block index.
    pub block: u32,
    /// Wordline index within the block.
    pub wordline: u32,
}

/// Address of a logical page within the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr {
    /// Block index.
    pub block: u32,
    /// Page index within the block (`0 .. pages_per_block`).
    pub page: u32,
}

impl PageAddr {
    /// The wordline backing this page on an MLC part: pages are interleaved
    /// (page `2w` = LSB of wordline `w`, page `2w + 1` = MSB). Non-MLC
    /// parts address pages via [`Geometry::wordline_of_page`].
    pub fn wordline(&self) -> u32 {
        self.page / 2
    }

    /// Whether this page is the LSB or MSB page of its wordline (MLC).
    pub fn kind(&self) -> PageKind {
        if self.page.is_multiple_of(2) {
            PageKind::Lsb
        } else {
            PageKind::Msb
        }
    }

    /// Builds the page address backed by `(wordline, kind)` on an MLC part.
    pub fn of(block: u32, wordline: u32, kind: PageKind) -> Self {
        let page = wordline * 2 + u32::from(kind == PageKind::Msb);
        Self { block, page }
    }
}

/// Address of a single cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellAddr {
    /// Block index.
    pub block: u32,
    /// Wordline index within the block.
    pub wordline: u32,
    /// Bitline (column) index.
    pub bitline: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_wordline_interleaving_round_trips() {
        let g = Geometry::small();
        for page in 0..g.pages_per_block() {
            let addr = PageAddr { block: 0, page };
            let rebuilt = PageAddr::of(0, addr.wordline(), addr.kind());
            assert_eq!(rebuilt, addr);
            assert_eq!(g.wordline_of_page(page), addr.wordline());
        }
    }

    #[test]
    fn page_kind_alternates() {
        assert_eq!(PageAddr { block: 0, page: 0 }.kind(), PageKind::Lsb);
        assert_eq!(PageAddr { block: 0, page: 1 }.kind(), PageKind::Msb);
        assert_eq!(PageAddr { block: 0, page: 6 }.wordline(), 3);
        assert_eq!(PageAddr { block: 0, page: 7 }.wordline(), 3);
    }

    #[test]
    fn geometry_counts_consistent() {
        let g = Geometry::standard();
        assert_eq!(g.pages_per_block(), 128);
        assert_eq!(g.cells_per_block(), 64 * 16384);
        assert_eq!(g.bits_per_block(), g.cells_per_block() * 2);
        assert_eq!(g.bits_per_page() * g.pages_per_block() as usize, g.bits_per_block());
    }

    #[test]
    fn tlc_geometry_counts() {
        let g = Geometry { bits_per_cell: 3, ..Geometry::small() };
        assert_eq!(g.pages_per_block(), 24);
        assert_eq!(g.bits_per_block(), g.cells_per_block() * 3);
        assert_eq!(g.wordline_of_page(7), 2);
        assert_eq!(g.page_bit(7), 1);
    }

    #[test]
    fn bounds_checks() {
        let g = Geometry::small();
        assert!(g.check_block(3).is_ok());
        assert!(g.check_block(4).is_err());
        assert!(g.check_wordline(7).is_ok());
        assert!(g.check_wordline(8).is_err());
        assert!(g.check_page(15).is_ok());
        assert!(g.check_page(16).is_err());
    }
}
