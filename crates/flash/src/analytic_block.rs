//! Page-analytic block state: the [`crate::ReadFidelity::PageAnalytic`]
//! backend of [`crate::Chip`].
//!
//! Instead of per-cell threshold voltages, a block keeps only
//!
//! * the packed **page payloads** as programmed (so reads return real data
//!   and the engine's FNV digest gate still bites),
//! * the block **operating point** (P/E cycles, retention age, Vpass), and
//! * **batched disturb counters**: reads are accumulated per block plus a
//!   per-wordline adjustment (hammer concentration on neighbours), and are
//!   folded into the analytic disturb term lazily — only when the Vpass
//!   changes, because the per-read disturb slope depends on the Vpass in
//!   effect when the read happened.
//!
//! A page read then costs O(errors), not O(cells): the raw bit error count
//! is sampled from a binomial around the closed-form RBER of
//! [`crate::analytic::AnalyticModel`] (the model the calibration suite pins
//! to the Monte-Carlo chip within ±35–60%), error positions are sampled
//! uniformly, and blocked bitlines (pass-through failures at a relaxed
//! Vpass) are sampled from the same model's pass-through term so Vpass
//! Tuning's zero-counting probe keeps working.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::Rng;

use crate::analytic::AnalyticModel;
use crate::bits;
use crate::block::BlockStatus;
use crate::chip::ReadOutcome;
use crate::error::FlashError;
use crate::math::normal_q;
use crate::noise::retention;
use crate::params::{ChipParams, NOMINAL_VPASS};
use crate::BitErrorStats;

/// Per-bit error floor from programming-distribution tail overlap at the
/// read references, each moved by `shift` normalized volts (randomly
/// programmed data; `shift == 0` is the default read path).
///
/// The closed-form [`AnalyticModel`] is calibrated to the paper's measured
/// curves from 2K P/E upward, where misprogram noise dominates; on a fresh
/// block the Monte-Carlo chip still shows a small error floor from the
/// Gaussian tails crossing the read references. Each of the `N - 1` state
/// boundaries contributes its two one-sided tails; states are equiprobable
/// (`1/N`) under random data and an adjacent-state misread flips exactly
/// one of the cell's `bits_per_cell` bits (Gray coding), hence the
/// `1/(N * bits_per_cell)` weight (1/8 for MLC). A nonzero `shift` is the
/// floor a read-retry re-read pays: away from the factory references, the
/// tails of *undisturbed* states cross the shifted boundaries and
/// misclassify.
pub(crate) fn gaussian_tail_floor_shifted(params: &ChipParams, pe_cycles: u64, shift: f64) -> f64 {
    let refs = &params.refs;
    let mut per_cell = 0.0;
    for i in 0..refs.len() {
        let vref = refs.level(i) + shift;
        let d_lo = params.state_dist_index(i, pe_cycles);
        let d_hi = params.state_dist_index(i + 1, pe_cycles);
        per_cell +=
            normal_q((vref - d_lo.mean) / d_lo.sigma) + normal_q((d_hi.mean - vref) / d_hi.sigma);
    }
    per_cell / (params.n_states() as u32 * params.bits_per_cell()) as f64
}

/// E-folding scale (normalized volts) of a retry shift's effect on the
/// disturb/retention error components. Read disturb lifts ER/P1 upward, so
/// raising the references by a state-sigma-scale shift re-centres them past
/// the drifted cells (errors decay); retention pulls P2/P3 downward, so the
/// same raise moves the boundaries *into* the leaked cells (errors grow).
/// The scale matches the default state sigma (≈10 normalized volts).
pub(crate) const RETRY_SHIFT_DECAY: f64 = 10.0;

/// Cap on the shift amplification factors: beyond a few decay lengths the
/// shifted-floor term dominates anyway, and an unbounded exponential would
/// just overflow the sampled error count.
pub(crate) const RETRY_SHIFT_GAIN_CAP: f64 = 32.0;

/// Operating-point constants of a block: every closed-form term that
/// depends only on `(pe_cycles, age_days, vpass)`, not on the read
/// counters. Reads within a batch share the operating point, so hoisting
/// these leaves only the disturb-linear fold (one multiply-add and an
/// `ln_1p`) on the per-read path.
#[derive(Debug, Clone, Copy)]
struct OpPoint {
    /// Per-read disturb slope at the current Vpass.
    slope: f64,
    /// Read-count-independent RBER: Gaussian tail floor + P/E noise +
    /// retention, summed in the exact order of the uncached path.
    static_rber: f64,
    /// Per-bitline pass-through blocking probability at the current Vpass.
    blocked_prob: f64,
}

/// One flash block of the page-analytic chip model.
#[derive(Debug, Clone)]
pub(crate) struct AnalyticBlock {
    wordlines: u32,
    bitlines: u32,
    bits_per_cell: u32,
    pe_cycles: u64,
    age_days: f64,
    reads_since_erase: u64,
    vpass: f64,
    page_programmed: Vec<bool>,
    /// Packed page payloads as programmed (empty until first program).
    page_data: Vec<Vec<u8>>,
    /// Read-disturb linear term accumulated at *past* Vpass settings:
    /// `Σ rd_slope(pe, vpass_at_read) · reads`, block-uniform part.
    folded_lin: f64,
    /// Folded per-wordline adjustment on top of [`Self::folded_lin`].
    folded_extra: Vec<f64>,
    /// Block-uniform reads not yet folded (all at the current Vpass).
    pending_reads: f64,
    /// Per-wordline read adjustments not yet folded: negative on hammered
    /// wordlines (their own reads do not pass-through-stress them),
    /// positive on hammer neighbours.
    pending_extra: Vec<f64>,
    /// Lazily computed operating-point constants; invalidated whenever
    /// `pe_cycles`, `age_days`, or `vpass` changes. Never serialized —
    /// a restored block recomputes on first read.
    op_cache: Option<OpPoint>,
}

impl AnalyticBlock {
    pub(crate) fn new(wordlines: u32, bitlines: u32, bits_per_cell: u32) -> Self {
        let pages = wordlines as usize * bits_per_cell as usize;
        Self {
            wordlines,
            bitlines,
            bits_per_cell,
            pe_cycles: 0,
            age_days: 0.0,
            reads_since_erase: 0,
            vpass: NOMINAL_VPASS,
            page_programmed: vec![false; pages],
            page_data: vec![Vec::new(); pages],
            folded_lin: 0.0,
            folded_extra: vec![0.0; wordlines as usize],
            pending_reads: 0.0,
            pending_extra: vec![0.0; wordlines as usize],
            op_cache: None,
        }
    }

    /// The block's operating-point constants, recomputed only after a
    /// `(pe_cycles, age_days, vpass)` change. `static_rber` preserves the
    /// uncached path's left-to-right summation order exactly, so cached
    /// reads are bit-identical to fresh evaluation.
    fn op_point(&mut self, params: &ChipParams, model: &AnalyticModel) -> OpPoint {
        if let Some(c) = self.op_cache {
            return c;
        }
        let c = OpPoint {
            slope: model.rd_slope(self.pe_cycles, self.vpass),
            static_rber: gaussian_tail_floor_shifted(params, self.pe_cycles, 0.0)
                + model.rber_pe(self.pe_cycles)
                + model.rber_retention(self.pe_cycles, self.age_days),
            blocked_prob: 2.0 * model.rber_passthrough(self.pe_cycles, self.age_days, self.vpass),
        };
        self.op_cache = Some(c);
        c
    }

    fn pages(&self) -> u32 {
        self.wordlines * self.bits_per_cell
    }

    fn reset_after_erase(&mut self) {
        self.age_days = 0.0;
        self.reads_since_erase = 0;
        self.page_programmed.fill(false);
        for d in &mut self.page_data {
            d.clear();
        }
        self.folded_lin = 0.0;
        self.folded_extra.fill(0.0);
        self.pending_reads = 0.0;
        self.pending_extra.fill(0.0);
        self.op_cache = None;
    }

    pub(crate) fn erase(&mut self) {
        self.pe_cycles += 1;
        self.reset_after_erase();
    }

    pub(crate) fn pre_wear(&mut self, cycles: u64) {
        self.pe_cycles += cycles;
        self.reset_after_erase();
    }

    pub(crate) fn advance_days(&mut self, days: f64) {
        assert!(days >= 0.0, "time flows forward");
        self.age_days += days;
        self.op_cache = None;
    }

    pub(crate) fn vpass(&self) -> f64 {
        self.vpass
    }

    /// Folds the pending read counters into the disturb term at the Vpass
    /// they were accumulated under, then applies the new setting.
    pub(crate) fn set_vpass(
        &mut self,
        params: &ChipParams,
        model: &AnalyticModel,
        vpass: f64,
    ) -> Result<(), FlashError> {
        if !(params.min_vpass..=NOMINAL_VPASS).contains(&vpass) {
            return Err(FlashError::VpassOutOfRange {
                requested: vpass,
                min: params.min_vpass,
                max: NOMINAL_VPASS,
            });
        }
        self.fold_pending(model);
        self.vpass = vpass;
        self.op_cache = None;
        Ok(())
    }

    fn fold_pending(&mut self, model: &AnalyticModel) {
        let slope = model.rd_slope(self.pe_cycles, self.vpass);
        self.folded_lin += slope * self.pending_reads;
        self.pending_reads = 0.0;
        for (folded, pending) in self.folded_extra.iter_mut().zip(&mut self.pending_extra) {
            *folded += slope * *pending;
            *pending = 0.0;
        }
    }

    /// Disturb linear term seen by one wordline, pending reads included.
    fn disturb_lin(&self, model: &AnalyticModel, wordline: u32) -> f64 {
        let wl = wordline as usize;
        let slope = model.rd_slope(self.pe_cycles, self.vpass);
        let lin = self.folded_lin
            + self.folded_extra[wl]
            + slope * (self.pending_reads + self.pending_extra[wl]);
        lin.max(0.0)
    }

    /// Block-uniform disturb linear term (the [`BlockStatus::dose`] analogue).
    fn disturb_lin_uniform(&self, model: &AnalyticModel) -> f64 {
        let slope = model.rd_slope(self.pe_cycles, self.vpass);
        (self.folded_lin + slope * self.pending_reads).max(0.0)
    }

    /// Per-bit RBER of one wordline, excluding pass-through errors (those
    /// are realized as blocked bitlines at read time).
    fn rber_wordline(&self, params: &ChipParams, model: &AnalyticModel, wordline: u32) -> f64 {
        self.rber_wordline_shifted(params, model, wordline, 0.0)
    }

    /// [`Self::rber_wordline`] at a uniform read-reference shift (the
    /// read-retry model): the misclassification floor follows the shifted
    /// references exactly, the disturb component decays as a positive shift
    /// tracks the up-drifted ER/P1 cells, and the retention component grows
    /// by the mirror factor (the shifted boundaries cut into the
    /// down-leaked P2/P3 cells). At `shift == 0` this is bit-identical to
    /// the default read path.
    fn rber_wordline_shifted(
        &self,
        params: &ChipParams,
        model: &AnalyticModel,
        wordline: u32,
        shift: f64,
    ) -> f64 {
        let lin = self.disturb_lin(model, wordline);
        let p = model.params();
        let rd = p.rd_sat * (lin / p.rd_sat).ln_1p();
        let rd_factor = (-shift / RETRY_SHIFT_DECAY).exp().min(RETRY_SHIFT_GAIN_CAP);
        let ret_factor = (shift / RETRY_SHIFT_DECAY).exp().min(RETRY_SHIFT_GAIN_CAP);
        gaussian_tail_floor_shifted(params, self.pe_cycles, shift)
            + model.rber_pe(self.pe_cycles)
            + model.rber_retention(self.pe_cycles, self.age_days) * ret_factor
            + rd * rd_factor
    }

    /// Probability that a bitline is blocked (pass-through failure) at the
    /// block's current Vpass. Each blocked bitline senses as P3 and flips
    /// half the bits on average, so the model's per-bit pass-through RBER
    /// doubles into a per-bitline blocking probability.
    fn blocked_prob(&self, model: &AnalyticModel) -> f64 {
        2.0 * model.rber_passthrough(self.pe_cycles, self.age_days, self.vpass)
    }

    /// Uniformly spread reads: block-level disturb only (matches
    /// `Block::apply_read_disturbs`).
    pub(crate) fn apply_read_disturbs(&mut self, n: u64) {
        self.pending_reads += n as f64;
        self.reads_since_erase += n;
    }

    /// Reads concentrated on one wordline: neighbours get boosted disturb,
    /// the target none from its own reads (matches `Block::hammer_wordline`).
    pub(crate) fn hammer_wordline(&mut self, params: &ChipParams, wordline: u32, n: u64) {
        assert!(wordline < self.wordlines, "wordline out of range");
        self.pending_reads += n as f64;
        self.reads_since_erase += n;
        let wl = wordline as usize;
        self.pending_extra[wl] -= n as f64;
        let boost = n as f64 * params.rd_neighbor_boost;
        if wl > 0 {
            self.pending_extra[wl - 1] += boost;
        }
        if wl + 1 < self.wordlines as usize {
            self.pending_extra[wl + 1] += boost;
        }
    }

    pub(crate) fn is_page_programmed(&self, page: u32) -> bool {
        self.page_programmed.get(page as usize).copied().unwrap_or(false)
    }

    /// Serializes every mutable lane of the block (checkpointing support).
    pub(crate) fn encode_state(&self, w: &mut crate::wire::Writer) {
        w.put_u64(self.pe_cycles);
        w.put_f64(self.age_days);
        w.put_u64(self.reads_since_erase);
        w.put_f64(self.vpass);
        w.put_bools(&self.page_programmed);
        w.put_u64(self.page_data.len() as u64);
        for d in &self.page_data {
            w.put_bytes(d);
        }
        w.put_f64(self.folded_lin);
        w.put_f64s(&self.folded_extra);
        w.put_f64(self.pending_reads);
        w.put_f64s(&self.pending_extra);
    }

    /// Restores a block serialized by [`Self::encode_state`] into `self`,
    /// which must have been constructed with the same geometry.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut crate::wire::Reader<'_>,
    ) -> Result<(), crate::wire::SnapError> {
        use crate::wire::SnapError;
        let pages = self.pages() as usize;
        let pe_cycles = r.get_u64()?;
        let age_days = r.get_f64()?;
        let reads_since_erase = r.get_u64()?;
        let vpass = r.get_f64()?;
        let page_programmed = r.get_bools()?;
        if page_programmed.len() != pages {
            return Err(SnapError::Mismatch(format!(
                "analytic block page count {} != {}",
                page_programmed.len(),
                pages
            )));
        }
        let n_data = r.get_u64()? as usize;
        if n_data != pages {
            return Err(SnapError::Mismatch(format!(
                "analytic block payload count {n_data} != {pages}"
            )));
        }
        let mut page_data = Vec::with_capacity(pages);
        for _ in 0..pages {
            page_data.push(r.get_bytes()?);
        }
        let folded_lin = r.get_f64()?;
        let folded_extra = r.get_f64s()?;
        let pending_reads = r.get_f64()?;
        let pending_extra = r.get_f64s()?;
        let wls = self.wordlines as usize;
        if folded_extra.len() != wls || pending_extra.len() != wls {
            return Err(SnapError::Mismatch(format!(
                "analytic block wordline lanes {}/{} != {}",
                folded_extra.len(),
                pending_extra.len(),
                wls
            )));
        }
        self.pe_cycles = pe_cycles;
        self.age_days = age_days;
        self.reads_since_erase = reads_since_erase;
        self.vpass = vpass;
        self.page_programmed = page_programmed;
        self.page_data = page_data;
        self.folded_lin = folded_lin;
        self.folded_extra = folded_extra;
        self.pending_reads = pending_reads;
        self.pending_extra = pending_extra;
        self.op_cache = None;
        Ok(())
    }

    pub(crate) fn status(&self, model: &AnalyticModel) -> BlockStatus {
        BlockStatus {
            pe_cycles: self.pe_cycles,
            reads_since_erase: self.reads_since_erase,
            age_days: self.age_days,
            vpass: self.vpass,
            programmed_pages: self.page_programmed.iter().filter(|p| **p).count() as u32,
            dose: self.disturb_lin_uniform(model),
        }
    }

    pub(crate) fn program_page(&mut self, page: u32, data: &[u8]) -> Result<(), FlashError> {
        if page >= self.pages() {
            return Err(FlashError::PageOutOfRange { page, pages: self.pages() });
        }
        if self.page_programmed[page as usize] {
            return Err(FlashError::PageAlreadyProgrammed { page });
        }
        let expected = self.bitlines as usize;
        if data.len() * 8 != expected {
            return Err(FlashError::DataLengthMismatch { got: data.len() * 8, expected });
        }
        // Data age: writing into a fully-erased block starts a fresh
        // retention period (same rule as the cell-exact block).
        if !self.page_programmed.iter().any(|&p| p) {
            self.age_days = 0.0;
            self.op_cache = None;
        }
        self.page_data[page as usize].clear();
        self.page_data[page as usize].extend_from_slice(data);
        self.page_programmed[page as usize] = true;
        Ok(())
    }

    pub(crate) fn intended_page_bits(&self, page: u32) -> Result<Vec<u8>, FlashError> {
        if page >= self.pages() {
            return Err(FlashError::PageOutOfRange { page, pages: self.pages() });
        }
        if !self.page_programmed[page as usize] {
            return Err(FlashError::PageNotProgrammed { page });
        }
        Ok(self.page_data[page as usize].clone())
    }

    /// Serves a page read from the analytic model: sample a raw error count
    /// around the closed-form RBER, flip that many uniformly-chosen bits,
    /// then overlay sampled pass-through blocking. O(errors) plus one page
    /// copy; no per-cell work.
    pub(crate) fn read_page(
        &mut self,
        params: &ChipParams,
        model: &AnalyticModel,
        rng: &mut StdRng,
        page: u32,
        disturb: bool,
    ) -> Result<ReadOutcome, FlashError> {
        self.read_page_shifted(params, model, rng, page, 0.0, disturb)
    }

    /// [`Self::read_page`] with every read reference moved by `shift` — the
    /// read-retry sample the recovery ladder consumes. Errors are drawn
    /// around [`Self::rber_wordline_shifted`], so a positive shift on a
    /// disturb-dominated wordline genuinely recovers errors while paying
    /// the shifted misclassification floor, exactly as the cell-exact
    /// sweep does in aggregate.
    pub(crate) fn read_page_shifted(
        &mut self,
        params: &ChipParams,
        model: &AnalyticModel,
        rng: &mut StdRng,
        page: u32,
        shift: f64,
        disturb: bool,
    ) -> Result<ReadOutcome, FlashError> {
        if page >= self.pages() {
            return Err(FlashError::PageOutOfRange { page, pages: self.pages() });
        }
        let wl = page / self.bits_per_cell;
        let page_bit = (page % self.bits_per_cell) as usize;
        if disturb {
            self.hammer_wordline(params, wl, 1);
        }
        let nbits = self.bitlines as usize;
        let programmed = self.page_programmed[page as usize];
        // An unprogrammed page reads back as erased cells (ER stores 1/1).
        let mut data =
            if programmed { self.page_data[page as usize].clone() } else { vec![0xFF; nbits / 8] };

        let c = self.op_point(params, model);
        let p_err = if shift == 0.0 {
            // Default read path: only the disturb fold depends on the read
            // counters; everything else comes from the cached operating
            // point. Summation order matches the uncached path (the shift
            // gain factors are exactly 1.0 at `shift == 0`), so this is
            // bit-identical to `rber_wordline_shifted(.., 0.0)`.
            let wli = wl as usize;
            let lin = (self.folded_lin
                + self.folded_extra[wli]
                + c.slope * (self.pending_reads + self.pending_extra[wli]))
                .max(0.0);
            let p = model.params();
            let rd = p.rd_sat * (lin / p.rd_sat).ln_1p();
            c.static_rber + rd
        } else {
            // Retry reads pay the full shifted evaluation: the floor and
            // the gain factors all depend on the shift, so there is
            // nothing operating-point-stable to reuse.
            self.rber_wordline_shifted(params, model, wl, shift)
        };
        let flips = sample_binomial(rng, self.bitlines as u64, p_err);
        for_distinct_positions(rng, self.bitlines, flips, |bl| {
            let i = bl as usize;
            data[i / 8] ^= 1 << (i % 8);
        });

        let p_block = c.blocked_prob;
        let mut blocked = 0u64;
        if p_block > 0.0 {
            blocked = sample_binomial(rng, self.bitlines as u64, p_block);
            // A blocked bitline cannot conduct, so the cell senses as the
            // top state (P3 on MLC).
            let top_bit = crate::state::state_bit(
                params.n_states() - 1,
                page_bit,
                self.bits_per_cell as usize,
            );
            for_distinct_positions(rng, self.bitlines, blocked, |bl| {
                bits::set_bit(&mut data, bl as usize, top_bit);
            });
        }

        let errors = if programmed {
            bits::hamming(&data, &self.page_data[page as usize])
        } else {
            // Intended is all-ones: errors are exactly the cleared bits.
            nbits as u64 - data.iter().map(|b| u64::from(b.count_ones())).sum::<u64>()
        };
        Ok(ReadOutcome {
            data,
            stats: BitErrorStats::new(errors, nbits as u64),
            blocked_bitlines: blocked,
        })
    }

    /// Closed-form expected RBER of one wordline's programmed pages
    /// (pass-through errors included), rounded to whole bits.
    pub(crate) fn rber_wordline_oracle(
        &self,
        params: &ChipParams,
        model: &AnalyticModel,
        wordline: u32,
    ) -> BitErrorStats {
        let pages = (0..self.bits_per_cell)
            .filter(|&k| self.page_programmed[(wordline * self.bits_per_cell + k) as usize])
            .count() as u64;
        if pages == 0 {
            return BitErrorStats::default();
        }
        let bits = pages * self.bitlines as u64;
        let p = self.rber_wordline(params, model, wordline) + 0.5 * self.blocked_prob(model);
        BitErrorStats::new((p * bits as f64).round() as u64, bits)
    }

    /// Closed-form expected RBER over all programmed pages of the block,
    /// unrounded: `(expected error bits, total bits)`.
    pub(crate) fn rber_expectation(
        &self,
        params: &ChipParams,
        model: &AnalyticModel,
    ) -> (f64, u64) {
        let mut expected = 0.0f64;
        let mut bits = 0u64;
        let p_block_err = 0.5 * self.blocked_prob(model);
        for wl in 0..self.wordlines {
            let pages = (0..self.bits_per_cell)
                .filter(|&k| self.page_programmed[(wl * self.bits_per_cell + k) as usize])
                .count() as u64;
            if pages == 0 {
                continue;
            }
            let wl_bits = pages * self.bitlines as u64;
            expected += (self.rber_wordline(params, model, wl) + p_block_err) * wl_bits as f64;
            bits += wl_bits;
        }
        (expected, bits)
    }

    /// Closed-form expected RBER over all programmed pages of the block,
    /// rounded to whole bits (the [`BitErrorStats`] oracle shape).
    pub(crate) fn rber_oracle(&self, params: &ChipParams, model: &AnalyticModel) -> BitErrorStats {
        let (expected, bits) = self.rber_expectation(params, model);
        BitErrorStats::new(expected.round() as u64, bits)
    }
}

/// Samples `Binomial(n, p)` deterministically from `rng`: exact inverse-CDF
/// from a single uniform draw for small means (the common case — RBERs here
/// are 1e-9..1e-2), a normal approximation for large ones. Always in `0..=n`.
pub(crate) fn sample_binomial(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if mean < 32.0 {
        // One RNG draw regardless of outcome (the former Knuth product
        // inversion paid one draw per trial), and an exact binomial rather
        // than its Poisson approximation.
        crate::math::binomial_from_uniform(n, p, rng.gen())
    } else {
        let sd = (mean * (1.0 - p)).sqrt();
        let z = retention::sample_standard_normal(rng);
        let k = (mean + sd * z).round();
        (k.max(0.0) as u64).min(n)
    }
}

/// Invokes `apply` on `k` distinct positions in `0..n`, sampled uniformly.
/// Rejection via a scratch set; `k` is far below `n` at model error rates.
fn for_distinct_positions(rng: &mut StdRng, n: u32, k: u64, mut apply: impl FnMut(u32)) {
    let k = k.min(n as u64);
    if k == n as u64 {
        for bl in 0..n {
            apply(bl);
        }
        return;
    }
    let mut chosen: HashSet<u32> = HashSet::with_capacity(k as usize);
    while (chosen.len() as u64) < k {
        let bl = rng.gen_range(0..n);
        if chosen.insert(bl) {
            apply(bl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (AnalyticBlock, ChipParams, AnalyticModel, StdRng) {
        let params = ChipParams::default();
        let model = AnalyticModel::from_chip(&params, 8);
        (AnalyticBlock::new(8, 1024, 2), params, model, StdRng::seed_from_u64(7))
    }

    fn program_all(block: &mut AnalyticBlock, rng: &mut StdRng) {
        for page in 0..16 {
            let data = bits::random(rng, 1024);
            block.program_page(page, &data).unwrap();
        }
    }

    #[test]
    fn program_read_round_trip_is_near_clean_when_fresh() {
        let (mut block, params, model, mut rng) = setup();
        let data = bits::random(&mut rng, 1024);
        block.program_page(4, &data).unwrap();
        assert_eq!(block.intended_page_bits(4).unwrap(), data);
        let out = block.read_page(&params, &model, &mut rng, 4, true).unwrap();
        // Fresh block at 0 P/E: expected errors ≪ 1.
        assert!(out.stats.errors <= 2, "fresh analytic read had {} errors", out.stats.errors);
        assert_eq!(out.blocked_bitlines, 0, "no blocking at nominal Vpass");
        assert_eq!(block.status(&model).reads_since_erase, 1);
    }

    #[test]
    fn program_validation_matches_exact_block() {
        let (mut block, _, _, mut rng) = setup();
        let data = bits::random(&mut rng, 1024);
        block.program_page(0, &data).unwrap();
        assert!(matches!(
            block.program_page(0, &data),
            Err(FlashError::PageAlreadyProgrammed { page: 0 })
        ));
        assert!(matches!(block.program_page(99, &data), Err(FlashError::PageOutOfRange { .. })));
        assert!(matches!(
            block.program_page(1, &[0u8; 3]),
            Err(FlashError::DataLengthMismatch { .. })
        ));
        assert!(matches!(block.intended_page_bits(2), Err(FlashError::PageNotProgrammed { .. })));
    }

    #[test]
    fn disturb_raises_expected_rber() {
        let (mut block, params, model, mut rng) = setup();
        block.pre_wear(8_000);
        program_all(&mut block, &mut rng);
        let r0 = block.rber_oracle(&params, &model).rate();
        block.apply_read_disturbs(250_000);
        let r1 = block.rber_oracle(&params, &model).rate();
        block.apply_read_disturbs(750_000);
        let r2 = block.rber_oracle(&params, &model).rate();
        assert!(r0 < r1 && r1 < r2, "{r0} {r1} {r2}");
    }

    #[test]
    fn sampled_errors_track_expectation() {
        let (mut block, params, model, mut rng) = setup();
        block.pre_wear(8_000);
        program_all(&mut block, &mut rng);
        block.apply_read_disturbs(500_000);
        let expect = block.rber_wordline(&params, &model, 3) * 1024.0;
        let n_reads = 400usize;
        let mut total = 0u64;
        for _ in 0..n_reads {
            // Oracle reads: no extra disturb, so the expectation is fixed.
            let out = block.read_page(&params, &model, &mut rng, 6, false).unwrap();
            total += out.stats.errors;
        }
        let mean = total as f64 / n_reads as f64;
        assert!(
            (0.7..=1.4).contains(&(mean / expect)),
            "sampled mean {mean:.2} vs expectation {expect:.2}"
        );
    }

    #[test]
    fn hammer_concentrates_on_neighbours() {
        let (mut block, params, model, mut rng) = setup();
        block.pre_wear(8_000);
        program_all(&mut block, &mut rng);
        block.hammer_wordline(&params, 4, 500_000);
        let neighbour = block.rber_wordline_oracle(&params, &model, 5).rate();
        let distant = block.rber_wordline_oracle(&params, &model, 1).rate();
        let hammered = block.rber_wordline_oracle(&params, &model, 4).rate();
        assert!(neighbour > distant, "neighbour {neighbour:.3e} vs distant {distant:.3e}");
        assert!(hammered < distant, "hammered {hammered:.3e} vs distant {distant:.3e}");
    }

    #[test]
    fn vpass_fold_preserves_accumulated_disturb() {
        let (mut block, params, model, mut rng) = setup();
        block.pre_wear(8_000);
        program_all(&mut block, &mut rng);
        block.apply_read_disturbs(100_000);
        let before = block.disturb_lin_uniform(&model);
        // Lowering Vpass must not erase the disturb damage already done
        // (pass-through errors do rise — that is the physics, not history).
        block.set_vpass(&params, &model, 0.96 * NOMINAL_VPASS).unwrap();
        let after = block.disturb_lin_uniform(&model);
        assert!((after / before - 1.0).abs() < 1e-9, "fold changed history: {before} -> {after}");
        // …but future reads at the lower Vpass accumulate disturb slower.
        let mut low = block.clone();
        low.apply_read_disturbs(100_000);
        let mut high = block.clone();
        high.set_vpass(&params, &model, NOMINAL_VPASS).unwrap();
        high.apply_read_disturbs(100_000);
        assert!(
            low.disturb_lin_uniform(&model) < high.disturb_lin_uniform(&model),
            "lower Vpass must slow disturb accumulation"
        );
    }

    #[test]
    fn relaxed_vpass_blocks_bitlines_and_nominal_does_not() {
        let (mut block, params, model, mut rng) = setup();
        program_all(&mut block, &mut rng);
        block.set_vpass(&params, &model, params.min_vpass).unwrap();
        let mut blocked = 0u64;
        for _ in 0..64 {
            blocked +=
                block.read_page(&params, &model, &mut rng, 0, false).unwrap().blocked_bitlines;
        }
        assert!(blocked > 0, "expected sampled blocking at minimum Vpass");
        block.set_vpass(&params, &model, NOMINAL_VPASS).unwrap();
        let out = block.read_page(&params, &model, &mut rng, 0, false).unwrap();
        assert_eq!(out.blocked_bitlines, 0);
    }

    #[test]
    fn erase_resets_state_and_increments_wear() {
        let (mut block, _, model, mut rng) = setup();
        program_all(&mut block, &mut rng);
        block.apply_read_disturbs(1_000);
        block.advance_days(3.0);
        block.erase();
        let st = block.status(&model);
        assert_eq!(st.pe_cycles, 1);
        assert_eq!(st.reads_since_erase, 0);
        assert_eq!(st.age_days, 0.0);
        assert_eq!(st.dose, 0.0);
        assert_eq!(st.programmed_pages, 0);
    }

    #[test]
    fn op_point_cache_is_bit_identical_to_fresh_evaluation() {
        let (mut block, params, model, mut rng) = setup();
        block.pre_wear(8_000);
        program_all(&mut block, &mut rng);
        block.advance_days(30.0);
        block.apply_read_disturbs(200_000);
        block.hammer_wordline(&params, 3, 50_000);
        // Cached reads (the block warms its op-point cache on the first
        // read) must consume RNG draws and produce data bit-identically to
        // a cache-cold clone evaluated fresh at every step.
        for trial in 0..16 {
            let mut cold = block.clone();
            cold.op_cache = None;
            let mut rng_a = StdRng::seed_from_u64(100 + trial);
            let mut rng_b = StdRng::seed_from_u64(100 + trial);
            for page in [0u32, 6, 7, 12] {
                let warm = block.read_page(&params, &model, &mut rng_a, page, true).unwrap();
                let fresh = cold.read_page(&params, &model, &mut rng_b, page, true).unwrap();
                assert_eq!(warm.data, fresh.data);
                assert_eq!(warm.stats.errors, fresh.stats.errors);
                assert_eq!(warm.blocked_bitlines, fresh.blocked_bitlines);
            }
            // Keep operating points aligned across trials.
            block.advance_days(1.0);
        }
        // Every op-point mutator must invalidate the cache.
        let warm = block.op_point(&params, &model);
        block.advance_days(5.0);
        assert!(block.op_cache.is_none(), "advance_days must invalidate");
        assert_ne!(warm.static_rber, block.op_point(&params, &model).static_rber);
        block.set_vpass(&params, &model, params.min_vpass).unwrap();
        assert!(block.op_cache.is_none(), "set_vpass must invalidate");
        let lo = block.op_point(&params, &model);
        assert!(lo.blocked_prob > 0.0 && lo.slope < warm.slope);
        block.erase();
        assert!(block.op_cache.is_none(), "erase must invalidate");
    }

    #[test]
    fn binomial_sampler_bounds_and_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
        // Small-mean regime (Knuth path).
        let mean_of = |rng: &mut StdRng, n: u64, p: f64, draws: u64| -> f64 {
            (0..draws).map(|_| sample_binomial(rng, n, p)).sum::<u64>() as f64 / draws as f64
        };
        let m = mean_of(&mut rng, 100_000, 1.0e-4, 3_000);
        assert!((m / 10.0 - 1.0).abs() < 0.15, "small-mean sampler mean {m} (expect 10)");
        // Large-mean regime (normal path).
        let m = mean_of(&mut rng, 100_000, 1.0e-2, 3_000);
        assert!((m / 1000.0 - 1.0).abs() < 0.05, "large-mean sampler mean {m} (expect 1000)");
        for _ in 0..200 {
            assert!(sample_binomial(&mut rng, 50, 0.9) <= 50);
        }
    }

    #[test]
    fn distinct_positions_are_distinct_and_complete() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = Vec::new();
        for_distinct_positions(&mut rng, 64, 20, |i| seen.push(i));
        assert_eq!(seen.len(), 20);
        let unique: HashSet<u32> = seen.iter().copied().collect();
        assert_eq!(unique.len(), 20);
        // k == n short-circuits to the full range.
        let mut all = Vec::new();
        for_distinct_positions(&mut rng, 16, 16, |i| all.push(i));
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }
}
