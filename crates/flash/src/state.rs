//! MLC cell states, the Gray-coded bit mapping, and read-reference voltages.
//!
//! A 2-bit MLC cell stores one of four states ordered by threshold voltage:
//! `ER < P1 < P2 < P3`. The paper's Figure 1 gives the bit assignment as the
//! tuple `(LSB, MSB)`: ER = 11, P1 = 10, P2 = 00, P3 = 01 — a Gray code, so a
//! shift into an *adjacent* state corrupts exactly one of the two bits.
//!
//! Reading compares the cell's threshold voltage against read-reference
//! voltages `Va < Vb < Vc` (Fig. 1):
//! * the **LSB page** needs a single comparison at `Vb` (LSB = 1 below `Vb`);
//! * the **MSB page** needs `Va` and `Vc` (MSB = 1 outside `[Va, Vc)`).
//!
//! [`VoltageRefs`] generalizes the reference set to `N-1` boundaries for an
//! `N`-state cell (TLC: 7, QLC: 15) so the chip database can describe other
//! generations; the MLC accessors ([`VoltageRefs::va`] etc.) and the
//! [`CellState`] enum remain the cell-exact tier's native vocabulary.

use crate::params::NOMINAL_VPASS;

/// The four programmable states of a 2-bit MLC cell, in threshold-voltage
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum CellState {
    /// Erased state, lowest threshold voltage. Stores `(LSB, MSB) = (1, 1)`.
    Er = 0,
    /// First programmed state. Stores `(1, 0)`.
    P1 = 1,
    /// Second programmed state. Stores `(0, 0)`.
    P2 = 2,
    /// Third programmed state, highest threshold voltage. Stores `(0, 1)`.
    P3 = 3,
}

/// All states in threshold-voltage order.
pub const ALL_STATES: [CellState; 4] = [CellState::Er, CellState::P1, CellState::P2, CellState::P3];

/// Largest state count a [`VoltageRefs`] set supports (QLC: 16 states).
pub const MAX_STATES: usize = 16;

/// Gray code of a state index: adjacent states differ in exactly one bit.
pub fn gray_code(state: usize) -> usize {
    state ^ (state >> 1)
}

/// The bit that page-kind `kind` of a `bits_per_cell`-bit cell stores for
/// `state`, under the complemented-Gray mapping that generalizes the paper's
/// Figure 1 (the erased state stores all ones; `kind` 0 is the LSB page).
///
/// For MLC this reproduces [`CellState::lsb`] (`kind` 0) and
/// [`CellState::msb`] (`kind` 1) exactly.
pub fn state_bit(state: usize, kind: usize, bits_per_cell: usize) -> bool {
    debug_assert!(kind < bits_per_cell, "page kind {kind} of a {bits_per_cell}-bit cell");
    (!gray_code(state) >> (bits_per_cell - 1 - kind)) & 1 == 1
}

/// Bit positions differing between two states' stored values of a
/// `bits_per_cell`-bit cell (the Gray property makes this 1 for adjacent
/// states).
pub fn state_bit_errors(a: usize, b: usize, bits_per_cell: usize) -> u64 {
    let diff = gray_code(a) ^ gray_code(b);
    (diff & ((1 << bits_per_cell) - 1)).count_ones() as u64
}

impl CellState {
    /// Builds a state from its index in threshold-voltage order.
    ///
    /// # Panics
    ///
    /// Panics if `index > 3`.
    pub fn from_index(index: u8) -> Self {
        ALL_STATES[index as usize]
    }

    /// Index of the state in threshold-voltage order (ER = 0 .. P3 = 3).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Builds the state storing the given `(lsb, msb)` pair.
    pub fn from_bits(lsb: bool, msb: bool) -> Self {
        match (lsb, msb) {
            (true, true) => CellState::Er,
            (true, false) => CellState::P1,
            (false, false) => CellState::P2,
            (false, true) => CellState::P3,
        }
    }

    /// The LSB stored by this state (paper Fig. 1 Gray map).
    pub fn lsb(self) -> bool {
        matches!(self, CellState::Er | CellState::P1)
    }

    /// The MSB stored by this state (paper Fig. 1 Gray map).
    pub fn msb(self) -> bool {
        matches!(self, CellState::Er | CellState::P3)
    }

    /// Both bits as a `(lsb, msb)` tuple.
    pub fn bits(self) -> (bool, bool) {
        (self.lsb(), self.msb())
    }

    /// Number of bit positions differing between the two states' stored
    /// values (0, 1 or 2). Adjacent states always differ by exactly one bit.
    pub fn bit_errors_vs(self, other: CellState) -> u64 {
        let (l1, m1) = self.bits();
        let (l2, m2) = other.bits();
        u64::from(l1 != l2) + u64::from(m1 != m2)
    }

    /// The next-higher state, if any.
    pub fn up(self) -> Option<CellState> {
        match self {
            CellState::Er => Some(CellState::P1),
            CellState::P1 => Some(CellState::P2),
            CellState::P2 => Some(CellState::P3),
            CellState::P3 => None,
        }
    }

    /// The next-lower state, if any.
    pub fn down(self) -> Option<CellState> {
        match self {
            CellState::Er => None,
            CellState::P1 => Some(CellState::Er),
            CellState::P2 => Some(CellState::P1),
            CellState::P3 => Some(CellState::P2),
        }
    }
}

impl std::fmt::Display for CellState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CellState::Er => "ER",
            CellState::P1 => "P1",
            CellState::P2 => "P2",
            CellState::P3 => "P3",
        };
        f.write_str(name)
    }
}

/// An ordered set of read-reference voltages on the normalized scale: the
/// `N-1` state boundaries of an `N`-state cell (MLC: `Va < Vb < Vc`).
///
/// Stored inline at fixed capacity so the type stays `Copy` on the hot read
/// path; only the first [`VoltageRefs::len`] slots are meaningful (the rest
/// are zeroed, and equality compares the active prefix only).
#[derive(Debug, Clone, Copy)]
pub struct VoltageRefs {
    levels: [f64; MAX_STATES - 1],
    count: u8,
}

impl PartialEq for VoltageRefs {
    fn eq(&self, other: &Self) -> bool {
        self.levels() == other.levels()
    }
}

impl VoltageRefs {
    /// Creates an MLC reference set, validating the ordering.
    ///
    /// # Panics
    ///
    /// Panics unless `va < vb < vc`.
    pub fn new(va: f64, vb: f64, vc: f64) -> Self {
        assert!(va < vb && vb < vc, "references must satisfy va < vb < vc");
        Self::from_levels(&[va, vb, vc])
    }

    /// Creates a reference set from an ordered boundary list (one boundary
    /// per adjacent state pair: 3 for MLC, 7 for TLC, 15 for QLC).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, exceeds [`MAX_STATES`]` - 1` entries, or
    /// is not strictly increasing.
    pub fn from_levels(levels: &[f64]) -> Self {
        assert!(
            !levels.is_empty() && levels.len() < MAX_STATES,
            "need 1..={} references, got {}",
            MAX_STATES - 1,
            levels.len()
        );
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "references must be strictly increasing: {levels:?}"
        );
        let mut stored = [0.0; MAX_STATES - 1];
        stored[..levels.len()].copy_from_slice(levels);
        Self { levels: stored, count: levels.len() as u8 }
    }

    /// The active boundaries, in increasing order.
    pub fn levels(&self) -> &[f64] {
        &self.levels[..self.count as usize]
    }

    /// Number of boundaries (`n_states - 1`).
    #[allow(clippy::len_without_is_empty)] // never empty by construction
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Number of states the boundaries separate.
    pub fn n_states(&self) -> usize {
        self.count as usize + 1
    }

    /// The `i`-th boundary (between states `i` and `i + 1`).
    pub fn level(&self, i: usize) -> f64 {
        self.levels()[i]
    }

    /// Reference separating ER from P1 (MLC accessor).
    pub fn va(&self) -> f64 {
        self.levels[0]
    }

    /// Reference separating P1 from P2 — the single LSB-read reference
    /// (MLC accessor).
    pub fn vb(&self) -> f64 {
        self.levels[1]
    }

    /// Reference separating P2 from P3 (MLC accessor).
    pub fn vc(&self) -> f64 {
        self.levels[2]
    }

    /// Classifies a threshold voltage into the index of the state region it
    /// currently occupies: the number of boundaries at or below `vth`
    /// (a cell sitting exactly on a boundary reads as the upper state).
    pub fn classify_index(&self, vth: f64) -> usize {
        self.levels().iter().filter(|&&level| vth >= level).count()
    }

    /// Classifies a threshold voltage into the MLC state *region* it
    /// currently occupies under these references.
    ///
    /// # Panics
    ///
    /// Panics on non-MLC reference sets (use [`VoltageRefs::classify_index`]).
    pub fn classify(&self, vth: f64) -> CellState {
        assert_eq!(self.n_states(), 4, "CellState classification is MLC-only");
        CellState::from_index(self.classify_index(vth) as u8)
    }

    /// Senses the LSB of an MLC cell: a single comparison at `Vb`.
    pub fn sense_lsb(&self, vth: f64) -> bool {
        vth < self.vb()
    }

    /// Senses the MSB of an MLC cell: comparisons at `Va` and `Vc`.
    pub fn sense_msb(&self, vth: f64) -> bool {
        vth < self.va() || vth >= self.vc()
    }

    /// Returns a copy with every reference shifted by `delta` (the
    /// read-retry primitive: real chips step all references of a wordline).
    pub fn shifted(&self, delta: f64) -> Self {
        let mut shifted = *self;
        for level in &mut shifted.levels[..shifted.count as usize] {
            *level += delta;
        }
        shifted
    }

    /// Returns a copy with only the lowest boundary raised by `delta` — the
    /// disturb-aware re-read primitive (read disturb lifts erased cells
    /// across the lowest boundary; the upper references stay at the factory
    /// points).
    ///
    /// # Panics
    ///
    /// Panics if the raise would reorder the boundaries.
    pub fn with_lowest_raised(&self, delta: f64) -> Self {
        let mut raised = *self;
        raised.levels[0] += delta;
        assert!(
            raised.count == 1 || raised.levels[0] < raised.levels[1],
            "raising the lowest reference by {delta} reorders the boundaries"
        );
        raised
    }
}

impl Default for VoltageRefs {
    /// Default MLC references positioned between the default state means
    /// (see [`crate::ChipParams`]).
    fn default() -> Self {
        Self::from_levels(&[100.0, 225.0, 355.0])
    }
}

/// A voltage region on the normalized scale, used to describe where a state's
/// distribution nominally lives (for plots and assertions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateRegion {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
}

impl StateRegion {
    /// Region assigned to `state` under the given references, with the upper
    /// state bounded above by the nominal `Vpass`.
    pub fn of(state: CellState, refs: &VoltageRefs) -> Self {
        Self::of_index(state.index() as usize, refs)
    }

    /// Region assigned to state index `i` under the given references.
    pub fn of_index(i: usize, refs: &VoltageRefs) -> Self {
        let lo = if i == 0 { f64::NEG_INFINITY } else { refs.level(i - 1) };
        let hi = if i == refs.len() { NOMINAL_VPASS } else { refs.level(i) };
        StateRegion { lo, hi }
    }

    /// Whether a voltage falls inside the region.
    pub fn contains(&self, vth: f64) -> bool {
        vth >= self.lo && vth < self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_map_matches_paper_figure_1() {
        assert_eq!(CellState::Er.bits(), (true, true));
        assert_eq!(CellState::P1.bits(), (true, false));
        assert_eq!(CellState::P2.bits(), (false, false));
        assert_eq!(CellState::P3.bits(), (false, true));
    }

    #[test]
    fn bits_round_trip() {
        for s in ALL_STATES {
            let (l, m) = s.bits();
            assert_eq!(CellState::from_bits(l, m), s);
            assert_eq!(CellState::from_index(s.index()), s);
        }
    }

    #[test]
    fn general_state_bit_reproduces_mlc_gray_map() {
        for s in ALL_STATES {
            let i = s.index() as usize;
            assert_eq!(state_bit(i, 0, 2), s.lsb(), "lsb of {s}");
            assert_eq!(state_bit(i, 1, 2), s.msb(), "msb of {s}");
            for o in ALL_STATES {
                assert_eq!(state_bit_errors(i, o.index() as usize, 2), s.bit_errors_vs(o));
            }
        }
    }

    #[test]
    fn general_gray_map_adjacent_states_differ_by_one_bit() {
        for bits in [1usize, 2, 3, 4] {
            let n = 1 << bits;
            for s in 0..n - 1 {
                assert_eq!(state_bit_errors(s, s + 1, bits), 1, "{bits}-bit cell state {s}");
            }
            // The erased state stores all-ones on every page kind.
            for kind in 0..bits {
                assert!(state_bit(0, kind, bits));
            }
        }
    }

    #[test]
    fn adjacent_states_differ_by_one_bit() {
        for s in ALL_STATES {
            if let Some(up) = s.up() {
                assert_eq!(s.bit_errors_vs(up), 1, "{s} -> {up}");
                assert_eq!(up.down(), Some(s));
            }
        }
        // Non-adjacent ER <-> P2 differ in exactly the LSB? ER=11, P2=00: two bits.
        assert_eq!(CellState::Er.bit_errors_vs(CellState::P2), 2);
        assert_eq!(CellState::P1.bit_errors_vs(CellState::P3), 2);
        assert_eq!(CellState::Er.bit_errors_vs(CellState::Er), 0);
    }

    #[test]
    fn classify_respects_reference_ordering() {
        let refs = VoltageRefs::default();
        assert_eq!(refs.classify(0.0), CellState::Er);
        assert_eq!(refs.classify(150.0), CellState::P1);
        assert_eq!(refs.classify(300.0), CellState::P2);
        assert_eq!(refs.classify(450.0), CellState::P3);
        // Boundary semantics: exactly Va reads as P1.
        assert_eq!(refs.classify(refs.va()), CellState::P1);
        for vth in [-5.0, 0.0, 99.9, 100.0, 224.9, 225.0, 354.9, 355.0, 500.0] {
            assert_eq!(refs.classify_index(vth), refs.classify(vth).index() as usize);
        }
    }

    #[test]
    fn classify_index_handles_non_mlc_counts() {
        let tlc = VoltageRefs::from_levels(&[60.0, 120.0, 180.0, 240.0, 300.0, 360.0, 420.0]);
        assert_eq!(tlc.n_states(), 8);
        assert_eq!(tlc.classify_index(-10.0), 0);
        assert_eq!(tlc.classify_index(60.0), 1);
        assert_eq!(tlc.classify_index(185.0), 3);
        assert_eq!(tlc.classify_index(500.0), 7);
    }

    #[test]
    fn sensing_matches_classification() {
        let refs = VoltageRefs::default();
        for vth in [-20.0, 40.0, 99.9, 100.1, 224.9, 225.1, 354.9, 355.1, 470.0] {
            let state = refs.classify(vth);
            assert_eq!(refs.sense_lsb(vth), state.lsb(), "lsb at {vth}");
            assert_eq!(refs.sense_msb(vth), state.msb(), "msb at {vth}");
        }
    }

    #[test]
    fn shifted_refs_preserve_ordering() {
        let refs = VoltageRefs::default().shifted(-30.0);
        assert!(refs.va() < refs.vb() && refs.vb() < refs.vc());
        assert!((refs.va() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn lowest_raise_leaves_upper_boundaries() {
        let refs = VoltageRefs::default().with_lowest_raised(20.0);
        assert!((refs.va() - 120.0).abs() < 1e-12);
        assert_eq!(refs.vb(), 225.0);
        assert_eq!(refs.vc(), 355.0);
    }

    #[test]
    #[should_panic(expected = "va < vb < vc")]
    fn invalid_refs_panic() {
        let _ = VoltageRefs::new(200.0, 100.0, 300.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_levels_panic() {
        let _ = VoltageRefs::from_levels(&[10.0, 10.0]);
    }

    #[test]
    fn equality_ignores_inactive_slots() {
        let a = VoltageRefs::from_levels(&[1.0, 2.0]);
        let b = VoltageRefs::from_levels(&[1.0, 2.0]);
        let c = VoltageRefs::from_levels(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn state_regions_partition_scale() {
        let refs = VoltageRefs::default();
        for s in ALL_STATES {
            let r = StateRegion::of(s, &refs);
            assert!(r.lo < r.hi);
        }
        assert!(StateRegion::of(CellState::Er, &refs).contains(-10.0));
        assert!(StateRegion::of(CellState::P3, &refs).contains(400.0));
        assert!(!StateRegion::of(CellState::P3, &refs).contains(513.0));
    }
}
