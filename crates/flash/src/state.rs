//! MLC cell states, the Gray-coded bit mapping, and read-reference voltages.
//!
//! A 2-bit MLC cell stores one of four states ordered by threshold voltage:
//! `ER < P1 < P2 < P3`. The paper's Figure 1 gives the bit assignment as the
//! tuple `(LSB, MSB)`: ER = 11, P1 = 10, P2 = 00, P3 = 01 — a Gray code, so a
//! shift into an *adjacent* state corrupts exactly one of the two bits.
//!
//! Reading compares the cell's threshold voltage against read-reference
//! voltages `Va < Vb < Vc` (Fig. 1):
//! * the **LSB page** needs a single comparison at `Vb` (LSB = 1 below `Vb`);
//! * the **MSB page** needs `Va` and `Vc` (MSB = 1 outside `[Va, Vc)`).

use crate::params::NOMINAL_VPASS;

/// The four programmable states of a 2-bit MLC cell, in threshold-voltage
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum CellState {
    /// Erased state, lowest threshold voltage. Stores `(LSB, MSB) = (1, 1)`.
    Er = 0,
    /// First programmed state. Stores `(1, 0)`.
    P1 = 1,
    /// Second programmed state. Stores `(0, 0)`.
    P2 = 2,
    /// Third programmed state, highest threshold voltage. Stores `(0, 1)`.
    P3 = 3,
}

/// All states in threshold-voltage order.
pub const ALL_STATES: [CellState; 4] = [CellState::Er, CellState::P1, CellState::P2, CellState::P3];

impl CellState {
    /// Builds a state from its index in threshold-voltage order.
    ///
    /// # Panics
    ///
    /// Panics if `index > 3`.
    pub fn from_index(index: u8) -> Self {
        ALL_STATES[index as usize]
    }

    /// Index of the state in threshold-voltage order (ER = 0 .. P3 = 3).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Builds the state storing the given `(lsb, msb)` pair.
    pub fn from_bits(lsb: bool, msb: bool) -> Self {
        match (lsb, msb) {
            (true, true) => CellState::Er,
            (true, false) => CellState::P1,
            (false, false) => CellState::P2,
            (false, true) => CellState::P3,
        }
    }

    /// The LSB stored by this state (paper Fig. 1 Gray map).
    pub fn lsb(self) -> bool {
        matches!(self, CellState::Er | CellState::P1)
    }

    /// The MSB stored by this state (paper Fig. 1 Gray map).
    pub fn msb(self) -> bool {
        matches!(self, CellState::Er | CellState::P3)
    }

    /// Both bits as a `(lsb, msb)` tuple.
    pub fn bits(self) -> (bool, bool) {
        (self.lsb(), self.msb())
    }

    /// Number of bit positions differing between the two states' stored
    /// values (0, 1 or 2). Adjacent states always differ by exactly one bit.
    pub fn bit_errors_vs(self, other: CellState) -> u64 {
        let (l1, m1) = self.bits();
        let (l2, m2) = other.bits();
        u64::from(l1 != l2) + u64::from(m1 != m2)
    }

    /// The next-higher state, if any.
    pub fn up(self) -> Option<CellState> {
        match self {
            CellState::Er => Some(CellState::P1),
            CellState::P1 => Some(CellState::P2),
            CellState::P2 => Some(CellState::P3),
            CellState::P3 => None,
        }
    }

    /// The next-lower state, if any.
    pub fn down(self) -> Option<CellState> {
        match self {
            CellState::Er => None,
            CellState::P1 => Some(CellState::Er),
            CellState::P2 => Some(CellState::P1),
            CellState::P3 => Some(CellState::P2),
        }
    }
}

impl std::fmt::Display for CellState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CellState::Er => "ER",
            CellState::P1 => "P1",
            CellState::P2 => "P2",
            CellState::P3 => "P3",
        };
        f.write_str(name)
    }
}

/// A set of read-reference voltages `Va < Vb < Vc` on the normalized scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageRefs {
    /// Reference separating ER from P1.
    pub va: f64,
    /// Reference separating P1 from P2 (the single LSB-read reference).
    pub vb: f64,
    /// Reference separating P2 from P3.
    pub vc: f64,
}

impl VoltageRefs {
    /// Creates a reference set, validating the ordering.
    ///
    /// # Panics
    ///
    /// Panics unless `va < vb < vc`.
    pub fn new(va: f64, vb: f64, vc: f64) -> Self {
        assert!(va < vb && vb < vc, "references must satisfy va < vb < vc");
        Self { va, vb, vc }
    }

    /// Classifies a threshold voltage into the state *region* it currently
    /// occupies under these references.
    pub fn classify(&self, vth: f64) -> CellState {
        if vth < self.va {
            CellState::Er
        } else if vth < self.vb {
            CellState::P1
        } else if vth < self.vc {
            CellState::P2
        } else {
            CellState::P3
        }
    }

    /// Senses the LSB of a cell: a single comparison at `Vb`.
    pub fn sense_lsb(&self, vth: f64) -> bool {
        vth < self.vb
    }

    /// Senses the MSB of a cell: comparisons at `Va` and `Vc`.
    pub fn sense_msb(&self, vth: f64) -> bool {
        vth < self.va || vth >= self.vc
    }

    /// Returns a copy with every reference shifted by `delta` (the
    /// read-retry primitive: real chips step all references of a wordline).
    pub fn shifted(&self, delta: f64) -> Self {
        Self { va: self.va + delta, vb: self.vb + delta, vc: self.vc + delta }
    }
}

impl Default for VoltageRefs {
    /// Default references positioned between the default state means
    /// (see [`crate::ChipParams`]).
    fn default() -> Self {
        Self { va: 100.0, vb: 225.0, vc: 355.0 }
    }
}

/// A voltage region on the normalized scale, used to describe where a state's
/// distribution nominally lives (for plots and assertions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateRegion {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
}

impl StateRegion {
    /// Region assigned to `state` under the given references, with the upper
    /// state bounded above by the nominal `Vpass`.
    pub fn of(state: CellState, refs: &VoltageRefs) -> Self {
        match state {
            CellState::Er => StateRegion { lo: f64::NEG_INFINITY, hi: refs.va },
            CellState::P1 => StateRegion { lo: refs.va, hi: refs.vb },
            CellState::P2 => StateRegion { lo: refs.vb, hi: refs.vc },
            CellState::P3 => StateRegion { lo: refs.vc, hi: NOMINAL_VPASS },
        }
    }

    /// Whether a voltage falls inside the region.
    pub fn contains(&self, vth: f64) -> bool {
        vth >= self.lo && vth < self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_map_matches_paper_figure_1() {
        assert_eq!(CellState::Er.bits(), (true, true));
        assert_eq!(CellState::P1.bits(), (true, false));
        assert_eq!(CellState::P2.bits(), (false, false));
        assert_eq!(CellState::P3.bits(), (false, true));
    }

    #[test]
    fn bits_round_trip() {
        for s in ALL_STATES {
            let (l, m) = s.bits();
            assert_eq!(CellState::from_bits(l, m), s);
            assert_eq!(CellState::from_index(s.index()), s);
        }
    }

    #[test]
    fn adjacent_states_differ_by_one_bit() {
        for s in ALL_STATES {
            if let Some(up) = s.up() {
                assert_eq!(s.bit_errors_vs(up), 1, "{s} -> {up}");
                assert_eq!(up.down(), Some(s));
            }
        }
        // Non-adjacent ER <-> P2 differ in exactly the LSB? ER=11, P2=00: two bits.
        assert_eq!(CellState::Er.bit_errors_vs(CellState::P2), 2);
        assert_eq!(CellState::P1.bit_errors_vs(CellState::P3), 2);
        assert_eq!(CellState::Er.bit_errors_vs(CellState::Er), 0);
    }

    #[test]
    fn classify_respects_reference_ordering() {
        let refs = VoltageRefs::default();
        assert_eq!(refs.classify(0.0), CellState::Er);
        assert_eq!(refs.classify(150.0), CellState::P1);
        assert_eq!(refs.classify(300.0), CellState::P2);
        assert_eq!(refs.classify(450.0), CellState::P3);
        // Boundary semantics: exactly Va reads as P1.
        assert_eq!(refs.classify(refs.va), CellState::P1);
    }

    #[test]
    fn sensing_matches_classification() {
        let refs = VoltageRefs::default();
        for vth in [-20.0, 40.0, 99.9, 100.1, 224.9, 225.1, 354.9, 355.1, 470.0] {
            let state = refs.classify(vth);
            assert_eq!(refs.sense_lsb(vth), state.lsb(), "lsb at {vth}");
            assert_eq!(refs.sense_msb(vth), state.msb(), "msb at {vth}");
        }
    }

    #[test]
    fn shifted_refs_preserve_ordering() {
        let refs = VoltageRefs::default().shifted(-30.0);
        assert!(refs.va < refs.vb && refs.vb < refs.vc);
        assert!((refs.va - 70.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "va < vb < vc")]
    fn invalid_refs_panic() {
        let _ = VoltageRefs::new(200.0, 100.0, 300.0);
    }

    #[test]
    fn state_regions_partition_scale() {
        let refs = VoltageRefs::default();
        for s in ALL_STATES {
            let r = StateRegion::of(s, &refs);
            assert!(r.lo < r.hi);
        }
        assert!(StateRegion::of(CellState::Er, &refs).contains(-10.0));
        assert!(StateRegion::of(CellState::P3, &refs).contains(400.0));
        assert!(!StateRegion::of(CellState::P3, &refs).contains(513.0));
    }
}
