//! Block-aggregate state: the [`crate::ReadFidelity::BlockAggregate`]
//! backend of [`crate::Chip`].
//!
//! A block's error state is a closed-form function of its operating point
//! (P/E cycles, reads-since-erase, retention age, Vpass), advanced lazily.
//! The state is kept as a **struct-of-arrays** over all blocks of a die so
//! the replay hot loop touches a handful of dense `Vec<f64>` lanes instead
//! of pointer-chasing per-block objects, and the disturb accumulator is
//! **fold-free**: every disturbing read adds `rd_slope(pe, vpass) ×
//! hammer-weight` directly (the slope in effect *at the read* is applied
//! immediately), so a Vpass change needs no counter folding and the
//! accumulated damage history is exact by construction — numerically
//! identical to the page-analytic tier's folded counters.
//!
//! Reads are served in one of two modes per block:
//!
//! * **fast-forward** (the common case): the rounded expected error count
//!   is precomputed into a per-block summary together with a *horizon* —
//!   the reads-since-erase count at which the summary could change (the
//!   expectation grows by half a bit) or the ECC margin could plausibly be
//!   crossed (computed analytically by inverting the saturating disturb
//!   law). Until the horizon, a read is O(1): no RNG draw, no payload
//!   allocation, no per-wordline work.
//! * **live sampling**: once the block's error expectation comes within a
//!   6-sigma-plus-slack band of the ECC margin (reported by the FTL via
//!   [`crate::Chip::set_read_margin`]), or whenever the pass-through
//!   blocking probability is nonzero (relaxed Vpass — policy probes must
//!   see sampled blocked-bitline counts), reads sample error counts from
//!   the same binomial the page-analytic tier uses.
//!
//! Payloads are not modeled at this tier: reads return empty data and the
//! per-page intended bits are unavailable (`FidelityUnsupported`). Only
//! error counts, blocked-bitline counts, and all per-block counters that
//! drive mitigation policies are maintained.

use rand::rngs::StdRng;

use crate::analytic::AnalyticModel;
use crate::analytic_block::{
    gaussian_tail_floor_shifted, sample_binomial, RETRY_SHIFT_DECAY, RETRY_SHIFT_GAIN_CAP,
};
use crate::block::BlockStatus;
use crate::chip::ReadOutcome;
use crate::error::FlashError;
use crate::params::{ChipParams, NOMINAL_VPASS};
use crate::BitErrorStats;

/// Extra slack (in error bits) added to the 6-sigma margin-proximity test.
/// Binomial tails at sub-bit means are wider than the normal approximation
/// suggests, so the band is padded before fast-forwarding is allowed.
const MARGIN_SLACK_BITS: f64 = 2.0;

/// Struct-of-arrays aggregate state for every block of one die.
#[derive(Debug, Clone)]
pub(crate) struct AggregateState {
    wordlines: u32,
    bitlines: u32,
    bits_per_cell: u32,
    /// Cached `AnalyticParams::rd_sat` (the model is fixed per chip).
    rd_sat: f64,
    /// Per-wordline hammer weight (geometry constant): the block-mean
    /// disturb contribution of one read targeting that wordline, in units
    /// of the per-read slope. Matches the page-analytic tier's
    /// block-uniform + per-wordline-extra accounting averaged over the
    /// block: `1 + (boost · neighbours − 1) / W`.
    wl_weight: Vec<f64>,
    /// Mean of [`Self::wl_weight`] — used to convert a disturb-linear gap
    /// into a read-count horizon.
    avg_weight: f64,

    // ---- per-block lanes (index = block) ----
    pe_cycles: Vec<u64>,
    age_days: Vec<f64>,
    reads_since_erase: Vec<u64>,
    vpass: Vec<f64>,
    /// Fold-free disturb-linear accumulator: `Σ slope(at read) · weight`.
    lin: Vec<f64>,
    /// Cached `rd_slope(pe, vpass)`.
    slope: Vec<f64>,
    /// Cached disturb-independent RBER: Gaussian tail floor + P/E noise +
    /// retention at the current age.
    static_rber: Vec<f64>,
    /// Cached pass-through blocking probability at the current Vpass.
    blocked_prob: Vec<f64>,
    /// Cached rounded expected per-page error count (fast-forward serve).
    summary_errors: Vec<u64>,
    /// Reads-since-erase at which the summary must be recomputed.
    summary_horizon: Vec<u64>,
    /// Whether reads sample live (margin proximity; one-way until the next
    /// invalidating event recomputes it).
    sampling: Vec<bool>,

    // ---- per-page lanes (index = block * pages_per_block + page) ----
    programmed: Vec<bool>,
    programmed_count: Vec<u32>,
}

impl AggregateState {
    pub(crate) fn new(
        blocks: u32,
        wordlines: u32,
        bitlines: u32,
        bits_per_cell: u32,
        params: &ChipParams,
        model: &AnalyticModel,
    ) -> Self {
        let n = blocks as usize;
        let w = wordlines as usize;
        let wl_weight: Vec<f64> = (0..w)
            .map(|wl| {
                let neighbours = usize::from(wl > 0) + usize::from(wl + 1 < w);
                1.0 + (params.rd_neighbor_boost * neighbours as f64 - 1.0) / w as f64
            })
            .collect();
        let avg_weight = wl_weight.iter().sum::<f64>() / w as f64;
        let mut state = Self {
            wordlines,
            bitlines,
            bits_per_cell,
            rd_sat: model.params().rd_sat,
            wl_weight,
            avg_weight,
            pe_cycles: vec![0; n],
            age_days: vec![0.0; n],
            reads_since_erase: vec![0; n],
            vpass: vec![NOMINAL_VPASS; n],
            lin: vec![0.0; n],
            slope: vec![0.0; n],
            static_rber: vec![0.0; n],
            blocked_prob: vec![0.0; n],
            summary_errors: vec![0; n],
            summary_horizon: vec![0; n],
            sampling: vec![false; n],
            programmed: vec![false; n * w * bits_per_cell as usize],
            programmed_count: vec![0; n],
        };
        for b in 0..n {
            state.refresh_caches(params, model, b);
        }
        state
    }

    fn pages(&self) -> u32 {
        self.wordlines * self.bits_per_cell
    }

    fn check_page(&self, page: u32) -> Result<(), FlashError> {
        if page >= self.pages() {
            return Err(FlashError::PageOutOfRange { page, pages: self.pages() });
        }
        Ok(())
    }

    /// Recomputes the operating-point caches after any change to (pe, age,
    /// vpass) and invalidates the fast-forward summary.
    fn refresh_caches(&mut self, params: &ChipParams, model: &AnalyticModel, b: usize) {
        let pe = self.pe_cycles[b];
        self.slope[b] = model.rd_slope(pe, self.vpass[b]);
        self.static_rber[b] = gaussian_tail_floor_shifted(params, pe, 0.0)
            + model.rber_pe(pe)
            + model.rber_retention(pe, self.age_days[b]);
        self.blocked_prob[b] = 2.0 * model.rber_passthrough(pe, self.age_days[b], self.vpass[b]);
        self.invalidate(b);
    }

    /// Forces a summary recomputation at the next read.
    fn invalidate(&mut self, b: usize) {
        self.summary_horizon[b] = 0;
        self.sampling[b] = false;
    }

    /// Saturating disturb RBER term from the fold-free accumulator.
    fn rd_term(&self, b: usize) -> f64 {
        self.rd_sat * (self.lin[b].max(0.0) / self.rd_sat).ln_1p()
    }

    /// Closed-form per-bit RBER of the block (pass-through excluded — that
    /// is realized as blocked bitlines at read time).
    fn rber_block(&self, b: usize) -> f64 {
        self.static_rber[b] + self.rd_term(b)
    }

    /// Recomputes the fast-forward summary: the rounded expected error
    /// count, the live-sampling decision, and the read-count horizon at
    /// which either could change.
    fn refresh_summary(&mut self, margin: Option<u64>, b: usize) {
        let bits = self.bitlines as f64;
        let mean = self.rber_block(b) * bits;
        self.summary_errors[b] = mean.round() as u64;
        self.sampling[b] = match margin {
            // Without a margin hint (standalone chip use) there is no safe
            // fast-forward bound: always sample.
            None => true,
            Some(m) => mean + 6.0 * mean.sqrt() + MARGIN_SLACK_BITS >= m as f64,
        };
        if self.sampling[b] {
            self.summary_horizon[b] = u64::MAX;
            return;
        }
        // Next interesting event, as an expected-error target: the rounded
        // summary steps (+0.5 bits), or the margin-proximity band opens.
        let step_target = (self.summary_errors[b] as f64 + 0.5) / bits;
        let margin_target = margin
            .map(|m| {
                // Solve mean + 6·sqrt(mean) + slack = m for mean.
                let m = m as f64 - MARGIN_SLACK_BITS;
                let y = (-6.0 + (36.0 + 4.0 * m).sqrt()) / 2.0;
                (y * y).max(0.0) / bits
            })
            .unwrap_or(f64::INFINITY);
        let p_target = step_target.min(margin_target);
        let rd_target = p_target - self.static_rber[b];
        let per_read = self.slope[b] * self.avg_weight;
        self.summary_horizon[b] = if rd_target <= self.rd_term(b) {
            // Already past the target (numerical edge): re-check shortly.
            self.reads_since_erase[b].saturating_add(1)
        } else if per_read <= 0.0 {
            // Host reads cannot move the accumulator; only invalidating
            // events (bulk disturbs, aging, Vpass) can, and they reset the
            // horizon themselves.
            u64::MAX
        } else {
            // Invert rd = rd_sat·ln(1 + lin/rd_sat) for the target lin.
            let lin_target = self.rd_sat * ((rd_target / self.rd_sat).exp_m1());
            let delta = ((lin_target - self.lin[b]) / per_read).ceil().max(1.0);
            if delta.is_finite() && delta < 9.0e18 {
                self.reads_since_erase[b].saturating_add(delta as u64)
            } else {
                u64::MAX
            }
        };
    }

    /// Samples one live read at the block's current operating point.
    fn sample_outcome(&self, rng: &mut StdRng, p_err: f64) -> ReadOutcome {
        let n = self.bitlines as u64;
        let flips = sample_binomial(rng, n, p_err.min(1.0));
        ReadOutcome {
            data: Vec::new(),
            stats: BitErrorStats::new(flips.min(n), n),
            blocked_bitlines: 0,
        }
    }

    /// Overlays sampled pass-through blocking on a live outcome (each
    /// blocked bitline senses as P3 and flips half its bits on average).
    fn overlay_blocking(&self, rng: &mut StdRng, b: usize, outcome: &mut ReadOutcome) {
        let p_block = self.blocked_prob[b];
        if p_block <= 0.0 {
            return;
        }
        let n = self.bitlines as u64;
        let blocked = sample_binomial(rng, n, p_block.min(1.0));
        let blocked_errs = sample_binomial(rng, blocked, 0.5);
        outcome.blocked_bitlines = blocked;
        outcome.stats = BitErrorStats::new((outcome.stats.errors + blocked_errs).min(n), n);
    }

    /// Serves a page read. Fast-forward mode costs O(1) with no RNG draw;
    /// live mode samples from the same binomial as the page-analytic tier.
    pub(crate) fn read_page(
        &mut self,
        rng: &mut StdRng,
        margin: Option<u64>,
        block: usize,
        page: u32,
        disturb: bool,
    ) -> Result<ReadOutcome, FlashError> {
        self.check_page(page)?;
        if disturb {
            self.lin[block] +=
                self.slope[block] * self.wl_weight[(page / self.bits_per_cell) as usize];
            self.reads_since_erase[block] += 1;
        }
        if self.reads_since_erase[block] >= self.summary_horizon[block] {
            self.refresh_summary(margin, block);
        }
        if self.sampling[block] || self.blocked_prob[block] > 0.0 {
            let mut outcome = self.sample_outcome(rng, self.rber_block(block));
            self.overlay_blocking(rng, block, &mut outcome);
            return Ok(outcome);
        }
        let n = self.bitlines as u64;
        Ok(ReadOutcome {
            data: Vec::new(),
            stats: BitErrorStats::new(self.summary_errors[block].min(n), n),
            blocked_bitlines: 0,
        })
    }

    /// Read-retry sample at a uniform reference shift — always sampled
    /// (recovery-ladder entry is a fast-forward event). The shift response
    /// matches the page-analytic tier: the misclassification floor follows
    /// the shifted references, the disturb component decays with a positive
    /// shift and the retention component grows by the mirror factor.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn read_page_shifted(
        &mut self,
        params: &ChipParams,
        model: &AnalyticModel,
        rng: &mut StdRng,
        block: usize,
        page: u32,
        shift: f64,
        disturb: bool,
    ) -> Result<ReadOutcome, FlashError> {
        self.check_page(page)?;
        if disturb {
            self.lin[block] +=
                self.slope[block] * self.wl_weight[(page / self.bits_per_cell) as usize];
            self.reads_since_erase[block] += 1;
        }
        let pe = self.pe_cycles[block];
        let rd_factor = (-shift / RETRY_SHIFT_DECAY).exp().min(RETRY_SHIFT_GAIN_CAP);
        let ret_factor = (shift / RETRY_SHIFT_DECAY).exp().min(RETRY_SHIFT_GAIN_CAP);
        let p_err = gaussian_tail_floor_shifted(params, pe, shift)
            + model.rber_pe(pe)
            + model.rber_retention(pe, self.age_days[block]) * ret_factor
            + self.rd_term(block) * rd_factor;
        let mut outcome = self.sample_outcome(rng, p_err);
        self.overlay_blocking(rng, block, &mut outcome);
        Ok(outcome)
    }

    pub(crate) fn program_page(
        &mut self,
        params: &ChipParams,
        model: &AnalyticModel,
        block: usize,
        page: u32,
        data: &[u8],
    ) -> Result<(), FlashError> {
        self.check_page(page)?;
        let idx = block * self.pages() as usize + page as usize;
        if self.programmed[idx] {
            return Err(FlashError::PageAlreadyProgrammed { page });
        }
        // Payloads are not modeled: an empty slice is the canonical write at
        // this tier, but real data is accepted (and dropped) so tier-generic
        // callers keep working — length-checked when present.
        if !data.is_empty() && data.len() * 8 != self.bitlines as usize {
            return Err(FlashError::DataLengthMismatch {
                got: data.len() * 8,
                expected: self.bitlines as usize,
            });
        }
        if self.programmed_count[block] == 0 {
            // Writing into a fully-erased block starts a fresh retention
            // period (same rule as the other tiers).
            self.age_days[block] = 0.0;
            self.refresh_caches(params, model, block);
        }
        self.programmed[idx] = true;
        self.programmed_count[block] += 1;
        Ok(())
    }

    pub(crate) fn is_page_programmed(&self, block: usize, page: u32) -> bool {
        self.programmed.get(block * self.pages() as usize + page as usize).copied().unwrap_or(false)
    }

    fn reset_after_erase(&mut self, block: usize) {
        self.age_days[block] = 0.0;
        self.reads_since_erase[block] = 0;
        self.lin[block] = 0.0;
        let pages = self.pages() as usize;
        self.programmed[block * pages..(block + 1) * pages].fill(false);
        self.programmed_count[block] = 0;
    }

    pub(crate) fn erase(&mut self, params: &ChipParams, model: &AnalyticModel, block: usize) {
        self.pe_cycles[block] += 1;
        self.reset_after_erase(block);
        self.refresh_caches(params, model, block);
    }

    pub(crate) fn pre_wear(
        &mut self,
        params: &ChipParams,
        model: &AnalyticModel,
        block: usize,
        cycles: u64,
    ) {
        self.pe_cycles[block] += cycles;
        self.reset_after_erase(block);
        self.refresh_caches(params, model, block);
    }

    /// In-place refresh: rewrite the same data (one P/E cycle), resetting
    /// age, reads, and disturb dose while keeping pages programmed.
    pub(crate) fn refresh_in_place(
        &mut self,
        params: &ChipParams,
        model: &AnalyticModel,
        block: usize,
    ) {
        let count = self.programmed_count[block];
        let pages = self.pages() as usize;
        let saved: Vec<bool> = self.programmed[block * pages..(block + 1) * pages].to_vec();
        self.pe_cycles[block] += 1;
        self.reset_after_erase(block);
        self.programmed[block * pages..(block + 1) * pages].copy_from_slice(&saved);
        self.programmed_count[block] = count;
        self.refresh_caches(params, model, block);
    }

    pub(crate) fn advance_days(
        &mut self,
        params: &ChipParams,
        model: &AnalyticModel,
        block: usize,
        days: f64,
    ) {
        assert!(days >= 0.0, "time flows forward");
        self.age_days[block] += days;
        self.refresh_caches(params, model, block);
    }

    pub(crate) fn vpass(&self, block: usize) -> f64 {
        self.vpass[block]
    }

    /// Applies a new Vpass. Fold-free: the accumulator already carries the
    /// slope in effect at each past read, so no counter folding is needed —
    /// only the forward-looking caches change.
    pub(crate) fn set_vpass(
        &mut self,
        params: &ChipParams,
        model: &AnalyticModel,
        block: usize,
        vpass: f64,
    ) -> Result<(), FlashError> {
        if !(params.min_vpass..=NOMINAL_VPASS).contains(&vpass) {
            return Err(FlashError::VpassOutOfRange {
                requested: vpass,
                min: params.min_vpass,
                max: NOMINAL_VPASS,
            });
        }
        self.vpass[block] = vpass;
        self.refresh_caches(params, model, block);
        Ok(())
    }

    /// Uniformly spread reads: block-level disturb only (matches the other
    /// tiers' `apply_read_disturbs`).
    pub(crate) fn apply_read_disturbs(&mut self, block: usize, n: u64) {
        self.lin[block] += self.slope[block] * n as f64;
        self.reads_since_erase[block] += n;
        self.invalidate(block);
    }

    /// Reads concentrated on one wordline. The aggregate tier keeps no
    /// per-wordline error state, so the hammer folds into the block mean at
    /// the wordline's geometry weight.
    pub(crate) fn hammer_wordline(&mut self, block: usize, wordline: u32, n: u64) {
        assert!(wordline < self.wordlines, "wordline out of range");
        self.lin[block] += self.slope[block] * self.wl_weight[wordline as usize] * n as f64;
        self.reads_since_erase[block] += n;
        self.invalidate(block);
    }

    pub(crate) fn status(&self, block: usize) -> BlockStatus {
        BlockStatus {
            pe_cycles: self.pe_cycles[block],
            reads_since_erase: self.reads_since_erase[block],
            age_days: self.age_days[block],
            vpass: self.vpass[block],
            programmed_pages: self.programmed_count[block],
            dose: self.lin[block].max(0.0),
        }
    }

    /// Closed-form expected RBER of one wordline's programmed pages
    /// (pass-through errors included), rounded to whole bits. All wordlines
    /// of a block share the aggregate operating point.
    pub(crate) fn rber_wordline_oracle(&self, block: usize, wordline: u32) -> BitErrorStats {
        let base = block * self.pages() as usize;
        let pages = (0..self.bits_per_cell)
            .filter(|&k| self.programmed[base + (wordline * self.bits_per_cell + k) as usize])
            .count() as u64;
        if pages == 0 {
            return BitErrorStats::default();
        }
        let bits = pages * self.bitlines as u64;
        let p = self.rber_block(block) + 0.5 * self.blocked_prob[block];
        BitErrorStats::new((p * bits as f64).round() as u64, bits)
    }

    /// Closed-form expected RBER over all programmed pages of the block,
    /// unrounded: `(expected error bits, total bits)`.
    pub(crate) fn rber_expectation(&self, block: usize) -> (f64, u64) {
        let bits = self.programmed_count[block] as u64 * self.bitlines as u64;
        let p = self.rber_block(block) + 0.5 * self.blocked_prob[block];
        (p * bits as f64, bits)
    }

    /// Closed-form expected RBER, rounded to whole bits (the
    /// [`BitErrorStats`] oracle shape).
    pub(crate) fn rber_oracle(&self, block: usize) -> BitErrorStats {
        let (expected, bits) = self.rber_expectation(block);
        BitErrorStats::new(expected.round() as u64, bits)
    }

    /// Serializes every mutable lane, caches included: fast-forward
    /// summaries and sampling flags are part of the replay-visible state
    /// (they gate when RNG draws happen), so bit-exact resume requires
    /// them verbatim rather than recomputed.
    pub(crate) fn encode_state(&self, w: &mut crate::wire::Writer) {
        w.put_u64s(&self.pe_cycles);
        w.put_f64s(&self.age_days);
        w.put_u64s(&self.reads_since_erase);
        w.put_f64s(&self.vpass);
        w.put_f64s(&self.lin);
        w.put_f64s(&self.slope);
        w.put_f64s(&self.static_rber);
        w.put_f64s(&self.blocked_prob);
        w.put_u64s(&self.summary_errors);
        w.put_u64s(&self.summary_horizon);
        w.put_bools(&self.sampling);
        w.put_bools(&self.programmed);
        w.put_u32s(&self.programmed_count);
    }

    /// Restores lanes serialized by [`Self::encode_state`] into `self`,
    /// which must have been constructed with the same geometry and model.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut crate::wire::Reader<'_>,
    ) -> Result<(), crate::wire::SnapError> {
        use crate::wire::SnapError;
        let n = self.pe_cycles.len();
        let pages = n * self.pages() as usize;
        let pe_cycles = r.get_u64s()?;
        let age_days = r.get_f64s()?;
        let reads_since_erase = r.get_u64s()?;
        let vpass = r.get_f64s()?;
        let lin = r.get_f64s()?;
        let slope = r.get_f64s()?;
        let static_rber = r.get_f64s()?;
        let blocked_prob = r.get_f64s()?;
        let summary_errors = r.get_u64s()?;
        let summary_horizon = r.get_u64s()?;
        let sampling = r.get_bools()?;
        let programmed = r.get_bools()?;
        let programmed_count = r.get_u32s()?;
        let block_lanes = [
            pe_cycles.len(),
            age_days.len(),
            reads_since_erase.len(),
            vpass.len(),
            lin.len(),
            slope.len(),
            static_rber.len(),
            blocked_prob.len(),
            summary_errors.len(),
            summary_horizon.len(),
            sampling.len(),
            programmed_count.len(),
        ];
        if block_lanes.iter().any(|&len| len != n) {
            return Err(SnapError::Mismatch(format!("aggregate block lane length != {n} blocks")));
        }
        if programmed.len() != pages {
            return Err(SnapError::Mismatch(format!(
                "aggregate page lane {} != {pages}",
                programmed.len()
            )));
        }
        self.pe_cycles = pe_cycles;
        self.age_days = age_days;
        self.reads_since_erase = reads_since_erase;
        self.vpass = vpass;
        self.lin = lin;
        self.slope = slope;
        self.static_rber = static_rber;
        self.blocked_prob = blocked_prob;
        self.summary_errors = summary_errors;
        self.summary_horizon = summary_horizon;
        self.sampling = sampling;
        self.programmed = programmed;
        self.programmed_count = programmed_count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (AggregateState, ChipParams, AnalyticModel, StdRng) {
        let params = ChipParams::default();
        let model = AnalyticModel::from_chip(&params, 8);
        let state = AggregateState::new(2, 8, 1024, 2, &params, &model);
        (state, params, model, StdRng::seed_from_u64(7))
    }

    fn program_all(state: &mut AggregateState, params: &ChipParams, model: &AnalyticModel) {
        for page in 0..16 {
            state.program_page(params, model, 0, page, &[]).unwrap();
        }
    }

    #[test]
    fn fast_forward_reads_touch_no_rng() {
        let (mut state, params, model, mut rng) = setup();
        program_all(&mut state, &params, &model);
        // Fresh block, wide margin: every read must be served cached.
        let margin = Some(40u64);
        let before = rng.clone();
        for i in 0..10_000u64 {
            let out = state.read_page(&mut rng, margin, 0, (i % 16) as u32, true).unwrap();
            assert!(out.data.is_empty());
            assert_eq!(out.blocked_bitlines, 0);
        }
        // The RNG stream must be untouched by fast-forward reads.
        let mut a = before;
        assert_eq!(
            rand::Rng::gen::<u64>(&mut a),
            rand::Rng::gen::<u64>(&mut rng),
            "fast-forward reads consumed RNG draws"
        );
        assert_eq!(state.status(0).reads_since_erase, 10_000);
        assert!(state.status(0).dose > 0.0);
    }

    #[test]
    fn no_margin_hint_always_samples() {
        let (mut state, params, model, mut rng) = setup();
        program_all(&mut state, &params, &model);
        let before = rng.clone();
        state.read_page(&mut rng, None, 0, 0, true).unwrap();
        let mut a = before;
        assert_ne!(
            rand::Rng::gen::<u64>(&mut a),
            rand::Rng::gen::<u64>(&mut rng),
            "margin-less reads must sample live"
        );
    }

    #[test]
    fn margin_proximity_switches_to_live_sampling() {
        let (mut state, params, model, mut rng) = setup();
        state.pre_wear(&params, &model, 0, 8_000);
        program_all(&mut state, &params, &model);
        state.apply_read_disturbs(0, 2_000_000);
        // Expected errors now approach/exceed a tight margin: must sample.
        let out = state.read_page(&mut rng, Some(4), 0, 0, false).unwrap();
        assert!(state.sampling[0], "worn+disturbed block must leave fast-forward mode");
        let _ = out;
    }

    #[test]
    fn summary_tracks_expectation_across_horizons() {
        let (mut state, params, model, mut rng) = setup();
        state.pre_wear(&params, &model, 0, 8_000);
        program_all(&mut state, &params, &model);
        // Wide margin keeps the block in fast-forward mode; the served
        // count must track the closed-form expectation within rounding.
        for _ in 0..200_000u64 {
            let out = state.read_page(&mut rng, Some(10_000), 0, 0, true).unwrap();
            let expect = state.rber_block(0) * 1024.0;
            let served = out.stats.errors as f64;
            assert!(
                (served - expect).abs() <= 1.0,
                "served {served} drifted from expectation {expect:.2}"
            );
        }
        assert!(state.rber_block(0) > state.static_rber[0], "disturb must accumulate");
    }

    #[test]
    fn matches_analytic_uniform_disturb_closed_form() {
        let (mut state, params, model, _) = setup();
        let mut analytic = crate::analytic_block::AnalyticBlock::new(8, 1024, 2);
        analytic.pre_wear(8_000);
        state.pre_wear(&params, &model, 0, 8_000);
        program_all(&mut state, &params, &model);
        let mut rng = StdRng::seed_from_u64(9);
        for page in 0..16 {
            let data = crate::bits::random(&mut rng, 1024);
            analytic.program_page(page, &data).unwrap();
        }
        analytic.apply_read_disturbs(500_000);
        state.apply_read_disturbs(0, 500_000);
        let (ae, ab) = analytic.rber_expectation(&params, &model);
        let (ge, gb) = state.rber_expectation(0);
        assert_eq!(ab, gb);
        let rel = (ge / ae - 1.0).abs();
        assert!(rel < 1e-9, "uniform-disturb closed forms diverged: {ge} vs {ae}");
    }

    #[test]
    fn relaxed_vpass_forces_sampled_blocking() {
        let (mut state, params, model, mut rng) = setup();
        program_all(&mut state, &params, &model);
        state.set_vpass(&params, &model, 0, params.min_vpass).unwrap();
        let mut blocked = 0u64;
        for _ in 0..64 {
            blocked +=
                state.read_page(&mut rng, Some(1_000), 0, 0, false).unwrap().blocked_bitlines;
        }
        assert!(blocked > 0, "expected sampled blocking at minimum Vpass");
        state.set_vpass(&params, &model, 0, NOMINAL_VPASS).unwrap();
        let out = state.read_page(&mut rng, Some(1_000), 0, 0, false).unwrap();
        assert_eq!(out.blocked_bitlines, 0);
        assert!(matches!(
            state.set_vpass(&params, &model, 0, 0.5 * NOMINAL_VPASS),
            Err(FlashError::VpassOutOfRange { .. })
        ));
    }

    #[test]
    fn shifted_retry_recovers_disturb_errors() {
        let (mut state, params, model, mut rng) = setup();
        state.pre_wear(&params, &model, 0, 10_000);
        program_all(&mut state, &params, &model);
        state.apply_read_disturbs(0, 3_000_000);
        let sum = |state: &mut AggregateState, rng: &mut StdRng, shift: f64| -> u64 {
            (0..32)
                .map(|_| {
                    state
                        .read_page_shifted(&params, &model, rng, 0, 0, shift, false)
                        .unwrap()
                        .stats
                        .errors
                })
                .sum()
        };
        let base = sum(&mut state, &mut rng, 0.0);
        let raised = sum(&mut state, &mut rng, 12.0);
        assert!(
            raised < base,
            "positive retry shift must recover disturb errors ({raised} !< {base})"
        );
    }

    #[test]
    fn program_and_erase_semantics_match_other_tiers() {
        let (mut state, params, model, _) = setup();
        state.program_page(&params, &model, 0, 3, &[]).unwrap();
        assert!(state.is_page_programmed(0, 3));
        assert!(matches!(
            state.program_page(&params, &model, 0, 3, &[]),
            Err(FlashError::PageAlreadyProgrammed { page: 3 })
        ));
        assert!(matches!(
            state.program_page(&params, &model, 0, 99, &[]),
            Err(FlashError::PageOutOfRange { .. })
        ));
        assert!(matches!(
            state.program_page(&params, &model, 0, 4, &[0u8; 3]),
            Err(FlashError::DataLengthMismatch { .. })
        ));
        state.apply_read_disturbs(0, 1_000);
        state.advance_days(&params, &model, 0, 3.0);
        state.erase(&params, &model, 0);
        let st = state.status(0);
        assert_eq!(st.pe_cycles, 1);
        assert_eq!(st.reads_since_erase, 0);
        assert_eq!(st.age_days, 0.0);
        assert_eq!(st.dose, 0.0);
        assert_eq!(st.programmed_pages, 0);
    }

    #[test]
    fn refresh_in_place_keeps_data_and_resets_wear_state() {
        let (mut state, params, model, _) = setup();
        program_all(&mut state, &params, &model);
        state.apply_read_disturbs(0, 10_000);
        state.advance_days(&params, &model, 0, 5.0);
        state.refresh_in_place(&params, &model, 0);
        let st = state.status(0);
        assert_eq!(st.pe_cycles, 1);
        assert_eq!(st.reads_since_erase, 0);
        assert_eq!(st.age_days, 0.0);
        assert_eq!(st.dose, 0.0);
        assert_eq!(st.programmed_pages, 16);
        assert!(state.is_page_programmed(0, 0));
    }
}
