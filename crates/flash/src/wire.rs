//! Versioned binary checkpoint codec: the wire primitives every layer's
//! snapshot support is built from.
//!
//! No serde is vendored, so the format is hand-rolled and deliberately
//! boring: little-endian fixed-width integers, floats as IEEE-754 bit
//! patterns (`f64::to_bits` — restores are bit-exact, never re-parsed
//! through decimal), length-prefixed byte strings, and tagged
//! length-prefixed **sections** so containers can evolve without breaking
//! old readers. A top-level container is
//!
//! ```text
//! magic (8 bytes) | version (u32) | payload … | CRC32 (u32, IEEE)
//! ```
//!
//! where the CRC covers everything before the trailer. [`open`] verifies
//! length, magic, CRC, and version in that order and returns a typed
//! [`SnapError`] — corrupt or truncated checkpoints are rejected, never
//! panicked on. Inside the payload, each section is
//! `tag (u32) | len (u64) | body`, read back in writing order via
//! [`Reader::section`].
//!
//! The codec promises **bit-exact round trips**: every value a layer
//! serializes (including RNG streams and derived floating-point caches) is
//! restored to the identical bit pattern, which is what makes a resumed
//! run's FNV digest equal to an uninterrupted run's.

use std::fmt;

/// Current container format version shared by every rd-* snapshot kind.
pub const SNAP_VERSION: u32 = 1;

/// Typed decode failure. Every malformed input maps to one of these —
/// the codec never panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the announced structure did.
    Truncated,
    /// The container's leading magic did not match the expected kind.
    BadMagic {
        /// The 8 bytes actually found at the head of the input.
        found: [u8; 8],
    },
    /// The container's format version is not the one this build reads.
    BadVersion {
        /// Version stamped in the container.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The CRC32 trailer did not match the container body (corruption).
    BadCrc,
    /// A section tag was out of order or unknown.
    BadTag {
        /// Tag found in the stream.
        found: u32,
        /// Tag the reader expected next.
        expected: u32,
    },
    /// The checkpoint is well-formed but disagrees with the live object it
    /// is being restored into (geometry, fidelity tier, config fingerprint).
    Mismatch(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::BadMagic { found } => write!(f, "bad snapshot magic {found:?}"),
            Self::BadVersion { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            Self::BadCrc => write!(f, "snapshot CRC mismatch (corrupt)"),
            Self::BadTag { found, expected } => {
                write!(f, "snapshot section tag {found:#x} where {expected:#x} expected")
            }
            Self::Mismatch(why) => write!(f, "snapshot does not match this object: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the container trailer checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact restore).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.put_raw(bytes);
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends a length-prefixed `f64` slice (bit patterns).
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a length-prefixed `f32` slice (bit patterns).
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Appends a length-prefixed `bool` slice (one byte per element).
    pub fn put_bools(&mut self, vs: &[bool]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_bool(v);
        }
    }

    /// Writes a tagged length-prefixed section: `tag | len | body`, where
    /// `body` is whatever `f` writes. The length is patched after `f` runs,
    /// so sections nest freely.
    pub fn section<F: FnOnce(&mut Writer)>(&mut self, tag: u32, f: F) {
        self.put_u32(tag);
        let len_at = self.buf.len();
        self.put_u64(0);
        f(self);
        let body_len = (self.buf.len() - len_at - 8) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&body_len.to_le_bytes());
    }
}

/// Checked decode cursor over an encoded byte slice.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an `f32` bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads a `bool` byte; any value other than 0/1 is corruption.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::BadCrc),
        }
    }

    /// Announced element count for a length-prefixed sequence, bounded by
    /// the bytes actually remaining (`elem_size` bytes per element) so a
    /// corrupt length cannot trigger a huge allocation.
    fn get_len(&mut self, elem_size: usize) -> Result<usize, SnapError> {
        let n = self.get_u64()?;
        let need = (n as usize).checked_mul(elem_size).ok_or(SnapError::Truncated)?;
        if need > self.remaining() {
            return Err(SnapError::Truncated);
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.get_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed `u64` sequence.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Reads a length-prefixed `u32` sequence.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, SnapError> {
        let n = self.get_len(4)?;
        (0..n).map(|_| self.get_u32()).collect()
    }

    /// Reads a length-prefixed `f64` sequence.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, SnapError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Reads a length-prefixed `f32` sequence.
    pub fn get_f32s(&mut self) -> Result<Vec<f32>, SnapError> {
        let n = self.get_len(4)?;
        (0..n).map(|_| self.get_f32()).collect()
    }

    /// Reads a length-prefixed `bool` sequence.
    pub fn get_bools(&mut self) -> Result<Vec<bool>, SnapError> {
        let n = self.get_len(1)?;
        (0..n).map(|_| self.get_bool()).collect()
    }

    /// Enters the next section, which must carry `expected` as its tag.
    /// Returns a sub-reader scoped to the section body; the parent cursor
    /// advances past the whole section.
    pub fn section(&mut self, expected: u32) -> Result<Reader<'a>, SnapError> {
        let found = self.get_u32()?;
        if found != expected {
            return Err(SnapError::BadTag { found, expected });
        }
        let len = self.get_u64()? as usize;
        let body = self.take(len)?;
        Ok(Reader::new(body))
    }
}

/// Seals `payload` into a container: magic, version, payload, CRC32 trailer.
pub fn seal(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + payload.len() + 4);
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Opens a container, verifying (in order) length, magic, CRC trailer, and
/// version, and returns the payload slice.
///
/// # Errors
///
/// [`SnapError::Truncated`] on short input, [`SnapError::BadMagic`] /
/// [`SnapError::BadCrc`] / [`SnapError::BadVersion`] as named.
pub fn open<'a>(bytes: &'a [u8], magic: &[u8; 8], version: u32) -> Result<&'a [u8], SnapError> {
    if bytes.len() < 8 + 4 + 4 {
        return Err(SnapError::Truncated);
    }
    if &bytes[..8] != magic {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(SnapError::BadMagic { found });
    }
    let body = &bytes[..bytes.len() - 4];
    let trailer = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != trailer {
        return Err(SnapError::BadCrc);
    }
    let found = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if found != version {
        return Err(SnapError::BadVersion { found, expected: version });
    }
    Ok(&bytes[12..bytes.len() - 4])
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"RDTESTSN";

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789" under CRC32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_and_sequence_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_f32(1.5e-30);
        w.put_bool(true);
        w.put_bytes(b"abc");
        w.put_u64s(&[1, 2, 3]);
        w.put_u32s(&[9, 8]);
        w.put_f64s(&[0.1, f64::INFINITY]);
        w.put_f32s(&[2.5]);
        w.put_bools(&[true, false, true]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_f32().unwrap(), 1.5e-30);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u32s().unwrap(), vec![9, 8]);
        assert_eq!(r.get_f64s().unwrap(), vec![0.1, f64::INFINITY]);
        assert_eq!(r.get_f32s().unwrap(), vec![2.5]);
        assert_eq!(r.get_bools().unwrap(), vec![true, false, true]);
        assert!(r.is_empty());
    }

    #[test]
    fn sections_nest_and_check_tags() {
        let mut w = Writer::new();
        w.section(1, |w| {
            w.put_u64(42);
            w.section(2, |w| w.put_u32(7));
        });
        w.section(3, |w| w.put_bytes(b"tail"));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let mut s1 = r.section(1).unwrap();
        assert_eq!(s1.get_u64().unwrap(), 42);
        let mut s2 = s1.section(2).unwrap();
        assert_eq!(s2.get_u32().unwrap(), 7);
        let mut s3 = r.section(3).unwrap();
        assert_eq!(s3.get_bytes().unwrap(), b"tail");
        assert!(r.is_empty());
        // Wrong expected tag is a typed error.
        let mut r = Reader::new(&bytes);
        assert_eq!(r.section(9).err(), Some(SnapError::BadTag { found: 1, expected: 9 }));
    }

    #[test]
    fn container_round_trip_and_rejections() {
        let mut w = Writer::new();
        w.put_u64(0x1234_5678_9ABC_DEF0);
        let sealed = seal(MAGIC, SNAP_VERSION, &w.into_bytes());
        let payload = open(&sealed, MAGIC, SNAP_VERSION).unwrap();
        assert_eq!(Reader::new(payload).get_u64().unwrap(), 0x1234_5678_9ABC_DEF0);

        // Truncation at any length must be rejected, never panic.
        for cut in 0..sealed.len() {
            assert!(open(&sealed[..cut], MAGIC, SNAP_VERSION).is_err(), "cut {cut}");
        }
        // Any single-bit flip in the body is caught by the CRC (or magic).
        for byte in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[byte] ^= 0x10;
            assert!(open(&bad, MAGIC, SNAP_VERSION).is_err(), "flip at {byte}");
        }
        // Wrong magic is typed.
        assert!(matches!(
            open(&sealed, b"WRONGMAG", SNAP_VERSION),
            Err(SnapError::BadMagic { .. })
        ));
        // A version bump with a valid CRC is a typed version error.
        let mut v2 = sealed.clone();
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        let crc = crc32(&v2[..v2.len() - 4]);
        let at = v2.len() - 4;
        v2[at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            open(&v2, MAGIC, SNAP_VERSION),
            Err(SnapError::BadVersion { found: 2, expected: SNAP_VERSION })
        );
    }

    #[test]
    fn corrupt_lengths_do_not_allocate_or_panic() {
        // A sequence length far beyond the buffer must fail fast.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).get_u64s(), Err(SnapError::Truncated));
        assert_eq!(Reader::new(&bytes).get_bytes(), Err(SnapError::Truncated));
        assert_eq!(Reader::new(&bytes).get_bools(), Err(SnapError::Truncated));
    }
}
