//! Closed-form RBER model, calibrated to the paper's measured curves.
//!
//! The Monte-Carlo chip is exact but too slow for SSD-lifetime questions
//! (Fig. 8 sweeps years of operation over many blocks). This module provides
//! the closed forms that the figures pin down directly:
//!
//! * `rber_pe` — P/E cycling noise floor (Fig. 3 intercepts);
//! * `rber_retention` — retention error growth (Fig. 6's curve);
//! * `rber_read_disturb` — the disturb term: linear in reads at Fig. 3's
//!   table of per-P/E slopes, exponentially sensitive to Vpass (§2.3),
//!   softly saturating at high read counts (Figs. 4, 10);
//! * `rber_passthrough` — additional read errors from a relaxed Vpass
//!   (Fig. 5), decreasing with retention age.
//!
//! A consistency test in the calibration suite keeps the Monte-Carlo chip
//! within tolerance of this model across the Fig. 3 grid.

use crate::params::{ChipParams, NOMINAL_VPASS};

/// Parameters of the analytic model. Defaults are derived from
/// [`ChipParams`] so the two fidelity levels agree by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticParams {
    /// P/E noise: `rber_pe = pe_coeff * (PE/1000)^pe_exp`.
    pub pe_coeff: f64,
    /// Exponent of the P/E noise law.
    pub pe_exp: f64,
    /// Retention: `rber_ret = ret_coeff * (PE/1000)^ret_pe_exp * days^ret_time_exp`.
    pub ret_coeff: f64,
    /// Wear acceleration of retention errors.
    pub ret_pe_exp: f64,
    /// Time exponent of retention errors.
    pub ret_time_exp: f64,
    /// Read-disturb slope at the reference wear level and nominal Vpass
    /// (RBER per read). Fig. 3's table: 1.0e-9 at 2K P/E.
    pub rd_slope_coeff: f64,
    /// Wear exponent of the slope (`(PE/rd_pe_ref)^rd_pe_exp`).
    pub rd_pe_exp: f64,
    /// Reference P/E count for the slope law.
    pub rd_pe_ref: f64,
    /// Vpass sensitivity (normalized volts per e-fold of slope).
    pub rd_lambda: f64,
    /// Soft saturation level of the disturb term:
    /// `rber_rd = rd_sat * ln(1 + slope*reads/rd_sat)`.
    pub rd_sat: f64,
    /// Pass-through: amplitude of the additional-RBER exponential at
    /// `vpass = pt_v0` with fresh data.
    pub pt_amp: f64,
    /// Voltage anchor of the pass-through exponential.
    pub pt_v0: f64,
    /// Exponential scale (volts) of the pass-through tail.
    pub pt_scale: f64,
    /// Hard cap of the over-programmed tail (no stored voltage exceeds it,
    /// so Vpass above the cap produces zero read errors).
    pub pt_cap: f64,
    /// Retention relief: the over-programmed tail drifts down as data ages,
    /// by `pt_drift_rate * (PE/1000)^ret_pe_exp * days^ret_time_exp` volts.
    pub pt_drift_rate: f64,
}

impl AnalyticParams {
    /// Derives the analytic constants from the Monte-Carlo chip parameters
    /// and the block's wordline count (pass-through errors scale with the
    /// number of unread wordlines per bitline).
    pub fn from_chip(chip: &ChipParams, wordlines_per_block: u32) -> Self {
        let w = wordlines_per_block.max(2) as f64;
        // A blocked bitline senses as the top state; averaged over the N
        // intended states of the target cell and the page kinds, half the
        // sensed bits are wrong (the Gray map splits bits evenly). Only
        // top-state cells (1/N of randomly-programmed data) carry the
        // over-programmed tail.
        let pt_amp_at_base = 0.5 * (w - 1.0) * (1.0 / chip.n_states() as f64) * chip.outlier_prob;
        Self {
            pe_coeff: chip.pe_rber_coeff,
            pe_exp: chip.pe_rber_exp,
            ret_coeff: chip.analytic_ret_coeff,
            ret_pe_exp: chip.retention_pe_exp,
            ret_time_exp: chip.retention_time_exp,
            rd_slope_coeff: chip.analytic_rd_slope,
            rd_pe_exp: chip.rd_pe_exp,
            rd_pe_ref: chip.rd_pe_ref,
            rd_lambda: chip.rd_vpass_lambda,
            rd_sat: chip.analytic_rd_sat,
            pt_amp: pt_amp_at_base,
            pt_v0: chip.outlier_base,
            pt_scale: chip.outlier_scale,
            pt_cap: chip.outlier_cap,
            // The outlier tail drifts down with retention age (Fig. 5's
            // curve ordering), but — over-programmed cells sit on saturated
            // traps — slower than ordinary charge loss, which is what makes
            // Fig. 6's safe-reduction staircase margin-driven rather than
            // drift-driven.
            pt_drift_rate: 0.5 * chip.outlier_base * chip.retention_rate,
        }
    }
}

impl Default for AnalyticParams {
    fn default() -> Self {
        Self::from_chip(&ChipParams::default(), 64)
    }
}

/// Per-component RBER decomposition at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RberBreakdown {
    /// P/E cycling noise floor.
    pub pe: f64,
    /// Retention errors.
    pub retention: f64,
    /// Read-disturb errors.
    pub read_disturb: f64,
    /// Additional read errors from a relaxed pass-through voltage.
    pub passthrough: f64,
}

impl RberBreakdown {
    /// Total RBER (components are independent error channels at these
    /// magnitudes, so they add).
    pub fn total(&self) -> f64 {
        self.pe + self.retention + self.read_disturb + self.passthrough
    }
}

/// The analytic RBER model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalyticModel {
    params: AnalyticParams,
}

impl AnalyticModel {
    /// Creates a model from explicit parameters.
    pub fn new(params: AnalyticParams) -> Self {
        Self { params }
    }

    /// Creates the model matched to a Monte-Carlo chip configuration.
    pub fn from_chip(chip: &ChipParams, wordlines_per_block: u32) -> Self {
        Self::new(AnalyticParams::from_chip(chip, wordlines_per_block))
    }

    /// The model's parameters.
    pub fn params(&self) -> &AnalyticParams {
        &self.params
    }

    /// P/E cycling noise floor.
    pub fn rber_pe(&self, pe_cycles: u64) -> f64 {
        self.params.pe_coeff * (pe_cycles as f64 / 1000.0).powf(self.params.pe_exp)
    }

    /// Retention error rate after `days` of retention at a wear level.
    pub fn rber_retention(&self, pe_cycles: u64, days: f64) -> f64 {
        if days <= 0.0 {
            return 0.0;
        }
        self.params.ret_coeff
            * (pe_cycles as f64 / 1000.0).powf(self.params.ret_pe_exp)
            * days.powf(self.params.ret_time_exp)
    }

    /// The per-read disturb slope at an operating point (the quantity
    /// tabulated in Fig. 3).
    pub fn rd_slope(&self, pe_cycles: u64, vpass: f64) -> f64 {
        self.params.rd_slope_coeff
            * (pe_cycles.max(1) as f64 / self.params.rd_pe_ref).powf(self.params.rd_pe_exp)
            * ((vpass - NOMINAL_VPASS) / self.params.rd_lambda).exp()
    }

    /// Read-disturb error rate after `reads` reads.
    pub fn rber_read_disturb(&self, pe_cycles: u64, reads: u64, vpass: f64) -> f64 {
        let linear = self.rd_slope(pe_cycles, vpass) * reads as f64;
        self.params.rd_sat * (linear / self.params.rd_sat).ln_1p()
    }

    /// Additional read (pass-through) error rate at a relaxed Vpass.
    ///
    /// Exactly zero whenever `vpass` clears the (retention-drifted)
    /// over-programmed tail cap — the paper's "Vpass can be lowered to some
    /// degree without inducing any read errors" (§2.4). Older data drifts
    /// downward, so larger relaxations become safe with retention age
    /// (Fig. 5's curve ordering).
    pub fn rber_passthrough(&self, pe_cycles: u64, days: f64, vpass: f64) -> f64 {
        let p = &self.params;
        let drift = p.pt_drift_rate
            * (pe_cycles as f64 / 1000.0).powf(p.ret_pe_exp)
            * days.max(0.0).powf(p.ret_time_exp);
        // Truncated exponential exceedance of the drifted tail.
        let q_cap = (-(p.pt_cap - p.pt_v0) / p.pt_scale).exp();
        let exceed = ((-(vpass - p.pt_v0 + drift) / p.pt_scale).exp() - q_cap) / (1.0 - q_cap);
        p.pt_amp * exceed.clamp(0.0, 1.0)
    }

    /// Full decomposition at an operating point.
    pub fn breakdown(&self, pe_cycles: u64, days: f64, reads: u64, vpass: f64) -> RberBreakdown {
        RberBreakdown {
            pe: self.rber_pe(pe_cycles),
            retention: self.rber_retention(pe_cycles, days),
            read_disturb: self.rber_read_disturb(pe_cycles, reads, vpass),
            passthrough: self.rber_passthrough(pe_cycles, days, vpass),
        }
    }

    /// Total RBER at an operating point.
    pub fn rber(&self, pe_cycles: u64, days: f64, reads: u64, vpass: f64) -> f64 {
        self.breakdown(pe_cycles, days, reads, vpass).total()
    }
}

/// Per-bit error floor from programming-distribution tail overlap at the
/// factory read references (the page-analytic backend's fresh-block floor;
/// see `analytic_block`). Exposed for benchmarks and calibration tooling
/// that want the read-count-independent part of the closed form on its own.
pub fn gaussian_tail_floor(params: &crate::params::ChipParams, pe_cycles: u64) -> f64 {
    crate::analytic_block::gaussian_tail_floor_shifted(params, pe_cycles, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AnalyticModel {
        AnalyticModel::default()
    }

    #[test]
    fn slope_table_matches_paper_fig3() {
        // Paper Fig. 3 slope table (P/E cycles -> slope per read).
        let table = [
            (2_000u64, 1.00e-9),
            (3_000, 1.63e-9),
            (4_000, 2.37e-9),
            (5_000, 3.74e-9),
            (8_000, 7.50e-9),
            (10_000, 9.10e-9),
            (15_000, 1.90e-8),
        ];
        let m = model();
        for (pe, expect) in table {
            let got = m.rd_slope(pe, NOMINAL_VPASS);
            let ratio = got / expect;
            assert!(
                (0.8..=1.25).contains(&ratio),
                "slope at {pe} P/E: got {got:.3e}, paper {expect:.3e}"
            );
        }
    }

    #[test]
    fn two_percent_vpass_cut_halves_total_rber_at_100k_reads() {
        // Paper §2.3: "at 100K reads, lowering Vpass by 2% can reduce the
        // RBER by as much as 50%".
        let m = model();
        let base = m.rber(8_000, 0.0, 100_000, NOMINAL_VPASS);
        let cut = m.rber(8_000, 0.0, 100_000, 0.98 * NOMINAL_VPASS);
        let reduction = 1.0 - cut / base;
        assert!(
            (0.35..=0.65).contains(&reduction),
            "2% Vpass cut reduced RBER by {:.0}%",
            reduction * 100.0
        );
    }

    #[test]
    fn disturb_linear_then_saturating() {
        let m = model();
        // Near-linear over Fig. 3's range (0..100K reads).
        let r50 = m.rber_read_disturb(8_000, 50_000, NOMINAL_VPASS);
        let r100 = m.rber_read_disturb(8_000, 100_000, NOMINAL_VPASS);
        let lin_ratio = r100 / (2.0 * r50);
        assert!((0.9..=1.0).contains(&lin_ratio), "linearity ratio {lin_ratio}");
        // Saturating beyond 1M (Fig. 10's range).
        let r1m = m.rber_read_disturb(8_000, 1_000_000, NOMINAL_VPASS);
        assert!(r1m < 10.0 * r100, "saturation missing: {r1m} vs {r100}");
        assert!(r1m > 3.0 * r100);
    }

    #[test]
    fn passthrough_zero_at_nominal_and_falls_with_age() {
        let m = model();
        // Exactly zero at and slightly below nominal (tail is capped).
        assert_eq!(m.rber_passthrough(8_000, 0.0, NOMINAL_VPASS), 0.0);
        assert_eq!(m.rber_passthrough(8_000, 0.0, m.params().pt_cap), 0.0);
        let fresh = m.rber_passthrough(8_000, 0.0, 480.0);
        let aged = m.rber_passthrough(8_000, 21.0, 480.0);
        assert!(fresh > aged && aged > 0.0, "retention must relieve pass-through errors");
        // Fig. 5 scale: ~1e-3 at Vpass=480 with fresh data (within ~2x).
        assert!((4e-4..=2e-3).contains(&fresh), "addl RBER at 480: {fresh}");
    }

    #[test]
    fn retention_matches_fig6_scale() {
        let m = model();
        // Day-21 retention errors at 8K P/E ≈ 0.35e-3 (DESIGN.md §4).
        let r = m.rber_retention(8_000, 21.0);
        assert!((2e-4..=5e-4).contains(&r), "retention at 21d: {r}");
        // Total base RBER stays under the 1e-3 ECC operating point for the
        // whole 21-day window the paper plots.
        let total = m.rber(8_000, 21.0, 0, NOMINAL_VPASS);
        assert!(total < 1.0e-3, "total at 21d: {total}");
    }

    #[test]
    fn breakdown_components_sum() {
        let m = model();
        let b = m.breakdown(8_000, 7.0, 250_000, 500.0);
        assert!((b.total() - (b.pe + b.retention + b.read_disturb + b.passthrough)).abs() < 1e-18);
        assert!(b.pe > 0.0 && b.retention > 0.0 && b.read_disturb > 0.0 && b.passthrough > 0.0);
    }

    #[test]
    fn tolerable_reads_grow_exponentially_as_vpass_drops() {
        // Paper §2.3: "for a fixed RBER, a decrease in Vpass exponentially
        // increases the number of tolerable read disturbs."
        let m = model();
        let target = 1.0e-3;
        let reads_to_target = |vpass: f64| -> f64 {
            // Invert rd term: rd_sat*ln1p(S*N/rd_sat) + pe = target.
            let rd_needed = target - m.rber_pe(8_000);
            let lin = m.params().rd_sat * ((rd_needed / m.params().rd_sat).exp() - 1.0);
            lin / m.rd_slope(8_000, vpass)
        };
        let n100 = reads_to_target(NOMINAL_VPASS);
        let n98 = reads_to_target(0.98 * NOMINAL_VPASS);
        let n96 = reads_to_target(0.96 * NOMINAL_VPASS);
        let g1 = n98 / n100;
        let g2 = n96 / n98;
        assert!(g1 > 2.0, "per-2% gain {g1}");
        assert!((g2 / g1 - 1.0).abs() < 0.01, "exponential spacing: {g1} vs {g2}");
    }
}
