//! The generated chip database: named [`ChipParams`] sets for real-ish NAND
//! parts across vendors and cell generations.
//!
//! The database source is `chips/vendors/*.ron` (one file per anonymized
//! vendor); `build.rs` parses and validates it with the `chips-codegen`
//! crate and generates the lookup tables included below. Each entry carries:
//!
//! * the full [`ChipParams`] coefficient set (any power-of-two state count —
//!   MLC, TLC, QLC — with matching reference voltages and retry ranges);
//! * chip-level metadata: the vendor label, a one-line description, the
//!   part's provisioned ECC capability line, and its default read-path
//!   fidelity tier;
//! * **calibration anchors** — headline RBER operating points from the read
//!   disturb papers that the closed-form model must reproduce. They are
//!   checked at build time (`chips-codegen`'s mirror of the model) and at
//!   run time (`ext_chip_sweep` evaluates the real [`crate::AnalyticModel`]
//!   against every anchor).
//!
//! The default chip ([`DEFAULT_CHIP`], index 0 of [`NAMES`]) is bit-for-bit
//! identical to [`ChipParams::default`]; a regression test enforces this, so
//! golden runs are independent of the database plumbing.
//!
//! # Example
//!
//! ```
//! let spec = rd_flash::chips::get("va-mlc-2y").expect("default chip exists");
//! assert_eq!(spec.params, rd_flash::ChipParams::default());
//! assert_eq!(spec.params.n_states(), 4);
//! let tlc = rd_flash::chips::get("va-tlc-v3").expect("TLC part exists");
//! assert_eq!(tlc.params.bits_per_cell(), 3);
//! ```

use crate::fidelity::ReadFidelity;
use crate::params::{ChipParams, StateParams};
use crate::state::VoltageRefs;

/// One calibration anchor: a headline operating point from the papers and
/// the raw bit error rate the chip's closed-form model reproduces there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationAnchor {
    /// Program/erase cycles of wear.
    pub pe_cycles: u64,
    /// Days of retention age.
    pub days: f64,
    /// Cumulative read-disturb count.
    pub reads: u64,
    /// Pass-through voltage during the reads (normalized scale).
    pub vpass: f64,
    /// Expected raw bit error rate at this operating point.
    pub rber: f64,
}

/// One database entry: a named chip with its parameters and metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Unique chip name (the `--chip` selector).
    pub name: &'static str,
    /// Anonymized vendor label (`"vendor-a"`, ...).
    pub vendor: &'static str,
    /// One-line description (node, cell type, role).
    pub description: &'static str,
    /// Provisioned ECC capability line (tolerable RBER) for this part.
    pub ecc_capability_rber: f64,
    /// Full flash-model parameter set (including the part's default
    /// fidelity tier and read-retry ranges).
    pub params: ChipParams,
    /// Calibration anchors, sorted by `(pe_cycles, days, reads)`.
    pub anchors: &'static [CalibrationAnchor],
}

include!(concat!(env!("OUT_DIR"), "/chip_db.rs"));

/// Names of every chip in the database, default chip first.
pub fn names() -> &'static [&'static str] {
    NAMES
}

/// Looks up a chip by name. Returns `None` for names not in the database;
/// [`names`] lists the valid ones.
pub fn get(name: &str) -> Option<ChipSpec> {
    NAMES.iter().position(|n| *n == name).map(spec)
}

/// Every chip in the database, default chip first.
pub fn all() -> Vec<ChipSpec> {
    (0..NAMES.len()).map(spec).collect()
}

/// The repository default chip (bit-identical to [`ChipParams::default`]).
pub fn default_spec() -> ChipSpec {
    get(DEFAULT_CHIP).expect("the database always contains the default chip")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chip_is_bit_identical_to_hardcoded_params() {
        // The load-bearing regression test of the whole database tier:
        // every golden run pins ChipParams::default(), and the DB's default
        // entry must reproduce it exactly — field for field, bit for bit.
        let spec = default_spec();
        let hardcoded = ChipParams::default();
        assert_eq!(spec.params, hardcoded);
        // PartialEq on f64 structs is bitwise-equality only for non-NaN
        // values, which is exactly what we want here; double-check a few
        // fields at the bit level to make the intent unmistakable.
        assert_eq!(spec.params.pe_rber_coeff.to_bits(), hardcoded.pe_rber_coeff.to_bits());
        assert_eq!(spec.params.min_vpass.to_bits(), hardcoded.min_vpass.to_bits());
        assert_eq!(spec.params.refs.levels()[0].to_bits(), hardcoded.refs.levels()[0].to_bits());
        assert_eq!(spec.ecc_capability_rber, 1.0e-3);
    }

    #[test]
    fn database_spans_vendors_and_generations() {
        let all = all();
        assert!(all.len() >= 6, "need >= 6 chips, have {}", all.len());
        let vendors: std::collections::BTreeSet<_> = all.iter().map(|s| s.vendor).collect();
        assert!(vendors.len() >= 2, "need >= 2 vendors, have {vendors:?}");
        let bits: std::collections::BTreeSet<_> =
            all.iter().map(|s| s.params.bits_per_cell()).collect();
        assert!(
            bits.contains(&2) && bits.contains(&3) && bits.contains(&4),
            "need MLC, TLC, and QLC parts, have bits-per-cell {bits:?}"
        );
    }

    #[test]
    fn every_chip_passes_params_check_and_lookup() {
        for spec in all() {
            spec.params.check().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(!spec.anchors.is_empty(), "{} has no anchors", spec.name);
            assert_eq!(get(spec.name).as_ref(), Some(&spec));
        }
        assert_eq!(get("no-such-chip"), None);
        assert_eq!(names()[0], DEFAULT_CHIP);
    }

    #[test]
    fn anchors_match_the_real_analytic_model() {
        // Build-time validation uses chips-codegen's mirror of the closed
        // form; this re-checks every anchor against the real model so the
        // two implementations cannot drift apart silently.
        for spec in all() {
            let model = crate::AnalyticModel::from_chip(&spec.params, 64);
            for a in spec.anchors {
                let got = model.rber(a.pe_cycles, a.days, a.reads, a.vpass);
                let err = (got.log10() - a.rber.log10()).abs();
                assert!(
                    err <= 0.2,
                    "{}: anchor (pe={}, days={}, reads={}, vpass={}) declares {:.3e}, \
                     model gives {:.3e}",
                    spec.name,
                    a.pe_cycles,
                    a.days,
                    a.reads,
                    a.vpass,
                    a.rber,
                    got
                );
            }
        }
    }
}
