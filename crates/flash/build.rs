//! Generates the typed chip database (`chips::spec` et al.) from
//! `chips/vendors/*.ron` into `OUT_DIR/chip_db.rs`.
//!
//! Parsing, validation (including the calibration-anchor gate against the
//! closed-form RBER model), and emission all live in the `chips-codegen`
//! crate so CI can run the same checks standalone via
//! `chips-codegen --check`.

use std::path::{Path, PathBuf};

fn main() {
    let manifest_dir = std::env::var("CARGO_MANIFEST_DIR").expect("cargo sets CARGO_MANIFEST_DIR");
    let db_dir = Path::new(&manifest_dir).join("../../chips/vendors");
    println!("cargo:rerun-if-changed={}", db_dir.display());

    let mut paths: Vec<PathBuf> = std::fs::read_dir(&db_dir)
        .unwrap_or_else(|e| panic!("chip database dir {}: {e}", db_dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "ron"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no vendor files in {}", db_dir.display());

    let mut files = Vec::new();
    for path in &paths {
        println!("cargo:rerun-if-changed={}", path.display());
        let src =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let vf = chips_codegen::parse_vendor_file(&src, &path.display().to_string())
            .unwrap_or_else(|d| panic!("chip database parse error:\n{d}"));
        files.push(vf);
    }
    if let Err(problems) = chips_codegen::validate(&files) {
        panic!("chip database validation failed:\n{}", problems.join("\n"));
    }

    let code = chips_codegen::emit(&files);
    let out =
        PathBuf::from(std::env::var("OUT_DIR").expect("cargo sets OUT_DIR")).join("chip_db.rs");
    std::fs::write(&out, code).unwrap_or_else(|e| panic!("{}: {e}", out.display()));
}
