//! Build-time generator for the declarative chip database.
//!
//! The chip database lives in `chips/vendors/*.ron` — one file per
//! (anonymized) vendor, each declaring named NAND parts as the full
//! `rd_flash::ChipParams` coefficient set plus chip-level metadata and
//! **calibration anchors** (headline RBER operating points from the read
//! disturb / SSD-error-characterization papers). This crate is consumed two
//! ways:
//!
//! * `rd-flash`'s `build.rs` calls [`parse_vendor_file`], [`validate`], and
//!   [`emit`] to generate the typed `chips::ChipDb` accessors into
//!   `OUT_DIR/chip_db.rs`;
//! * the `chips-codegen --check` binary runs the same parse + validation
//!   standalone, so CI can lint the database (with line/column diagnostics)
//!   without building the whole workspace.
//!
//! The parser is a hand-rolled RON *subset* — structs `(field: value, ...)`,
//! lists `[...]`, strings, numbers, booleans, and `//` comments — matching
//! the repo's no-external-deps house style. Anything fancier (enums with
//! payloads, maps, raw strings) is rejected with a located diagnostic.
//!
//! Validation mirrors `ChipParams::check` (the source of truth at run time)
//! and additionally checks database-level invariants the flash crate cannot
//! see: name uniqueness across vendor files, exactly one default chip,
//! anchor monotonicity, and agreement between each anchor and the closed
//! form RBER model (re-derived here — see [`model_rber`]) within a log-scale
//! tolerance.

use std::fmt;

/// Nominal pass-through voltage on the papers' normalized scale. Must match
/// `rd_flash::NOMINAL_VPASS`.
pub const NOMINAL_VPASS: f64 = 512.0;

/// Maximum states per cell the flash crate supports (`rd_flash`'s
/// `MAX_STATES`).
pub const MAX_STATES: usize = 16;

/// Wordlines-per-block assumed when deriving the pass-through amplitude for
/// anchor validation (the standard characterization geometry).
pub const ANCHOR_WORDLINES: u32 = 64;

/// Log10 tolerance between an anchor's declared RBER and the closed-form
/// model: anchors must land within `10^0.2 ≈ 1.6x` of the model.
pub const ANCHOR_TOL_LOG10: f64 = 0.2;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// A located parse or validation diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Source label (file path) the diagnostic refers to.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.col, self.msg)
    }
}

impl std::error::Error for Diag {}

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

/// One Gaussian programming target: `(mean, sigma)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateDef {
    /// Mean threshold voltage right after programming.
    pub mean: f64,
    /// Standard deviation right after programming.
    pub sigma: f64,
}

/// Read-path fidelity tier a chip defaults to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityDef {
    /// Per-cell Monte-Carlo (MLC only).
    CellExact,
    /// Sampled closed-form model, per-page state.
    PageAnalytic,
    /// Sampled closed-form model, per-block aggregate state.
    BlockAggregate,
}

impl FidelityDef {
    /// The RON spelling of this tier.
    pub fn as_ron(self) -> &'static str {
        match self {
            FidelityDef::CellExact => "cell-exact",
            FidelityDef::PageAnalytic => "page-analytic",
            FidelityDef::BlockAggregate => "block-aggregate",
        }
    }

    fn from_ron(s: &str) -> Option<Self> {
        match s {
            "cell-exact" => Some(FidelityDef::CellExact),
            "page-analytic" => Some(FidelityDef::PageAnalytic),
            "block-aggregate" => Some(FidelityDef::BlockAggregate),
            _ => None,
        }
    }

    /// The `rd_flash::ReadFidelity` variant path emitted into generated code.
    pub fn as_rust(self) -> &'static str {
        match self {
            FidelityDef::CellExact => "ReadFidelity::CellExact",
            FidelityDef::PageAnalytic => "ReadFidelity::PageAnalytic",
            FidelityDef::BlockAggregate => "ReadFidelity::BlockAggregate",
        }
    }
}

/// A calibration anchor: one headline operating point from the papers and
/// the raw bit error rate the model must reproduce there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorDef {
    /// Program/erase cycles of wear.
    pub pe: u64,
    /// Days of retention age.
    pub days: f64,
    /// Cumulative read disturb count.
    pub reads: u64,
    /// Pass-through voltage during the reads (normalized scale).
    pub vpass: f64,
    /// Expected raw bit error rate at this operating point.
    pub rber: f64,
}

/// One chip entry of a vendor file — the full `ChipParams` coefficient set
/// plus database-level metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipDef {
    /// Unique chip name (`--chip` selector), kebab-case.
    pub name: String,
    /// One-line human description (process node, cell type, role).
    pub description: String,
    /// Whether this chip is the repository default (exactly one per DB).
    pub default: bool,
    /// Default read-path fidelity tier.
    pub fidelity: FidelityDef,
    /// Provisioned ECC capability line (tolerable RBER) for this part.
    pub ecc_capability_rber: f64,
    /// Programming distributions in threshold-voltage order.
    pub states: Vec<StateDef>,
    /// Read reference voltages (`states.len() - 1` boundaries).
    pub refs: Vec<f64>,
    /// Lowest pass-through voltage the tuning interface accepts.
    pub min_vpass: f64,
    /// `rber_pe = pe_rber_coeff * (PE/1000)^pe_rber_exp`.
    pub pe_rber_coeff: f64,
    /// Exponent of the P/E error law.
    pub pe_rber_exp: f64,
    /// Distribution widening with wear (coefficient).
    pub pe_sigma_widen_coeff: f64,
    /// Distribution widening with wear (exponent).
    pub pe_sigma_widen_exp: f64,
    /// Base retention-loss rate.
    pub retention_rate: f64,
    /// Wear acceleration of retention loss.
    pub retention_pe_exp: f64,
    /// Sub-linear time exponent of retention loss.
    pub retention_time_exp: f64,
    /// Log-normal sigma of per-cell leak rates.
    pub retention_leak_sigma_ln: f64,
    /// Per-read disturb dose coefficient.
    pub rd_alpha: f64,
    /// Tunneling softness of the disturb closed form.
    pub rd_kappa: f64,
    /// Wear exponent of the disturb slope.
    pub rd_pe_exp: f64,
    /// Reference P/E count of the slope law.
    pub rd_pe_ref: f64,
    /// Vpass sensitivity (volts per e-fold).
    pub rd_vpass_lambda: f64,
    /// Pareto tail exponent of disturb susceptibility.
    pub rd_susceptibility_pareto_a: f64,
    /// Cap on the susceptibility factor.
    pub rd_susceptibility_cap: f64,
    /// Extra dose multiplier for direct neighbours of a hammered wordline.
    pub rd_neighbor_boost: f64,
    /// Over-programmed tail probability (top state).
    pub outlier_prob: f64,
    /// Lower edge of the outlier tail.
    pub outlier_base: f64,
    /// Exponential scale of the outlier tail.
    pub outlier_scale: f64,
    /// Hard cap of the outlier tail (below nominal Vpass).
    pub outlier_cap: f64,
    /// Program-interference sigma (added in quadrature).
    pub program_interference_sigma: f64,
    /// Closed-form retention coefficient (analytic tiers).
    pub analytic_ret_coeff: f64,
    /// Closed-form per-read disturb slope at reference wear/nominal Vpass.
    pub analytic_rd_slope: f64,
    /// Closed-form disturb saturation level.
    pub analytic_rd_sat: f64,
    /// Read-retry uniform reference shifts, in sweep order.
    pub retry_shifts: Vec<f64>,
    /// Disturb-aware re-read lowest-boundary raises, in order.
    pub reread_va_raises: Vec<f64>,
    /// Calibration anchors, ordered by `(pe, days, reads)`.
    pub anchors: Vec<AnchorDef>,
}

/// A parsed vendor file: the vendor label plus its chip entries.
#[derive(Debug, Clone, PartialEq)]
pub struct VendorFile {
    /// Vendor label (anonymized, e.g. `"vendor-a"`).
    pub vendor: String,
    /// Chip entries in file order.
    pub chips: Vec<ChipDef>,
}

// ---------------------------------------------------------------------------
// Lexer / parser (RON subset)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
    Comma,
    Str(String),
    Num(String),
    Ident(String),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: u32,
    col: u32,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    file: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str, file: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0, line: 1, col: 1, file }
    }

    fn diag(&self, line: u32, col: u32, msg: impl Into<String>) -> Diag {
        Diag { file: self.file.to_string(), line, col, msg: msg.into() }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = *self.src.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn tokens(mut self) -> Result<Vec<Spanned>, Diag> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and `//` comments.
            loop {
                match self.peek() {
                    Some(b) if b.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                        while let Some(b) = self.peek() {
                            if b == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else { break };
            let tok = match b {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b':' => {
                    self.bump();
                    Tok::Colon
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                other => {
                                    return Err(self.diag(
                                        self.line,
                                        self.col,
                                        format!(
                                            "unsupported string escape {:?}",
                                            other.map(char::from)
                                        ),
                                    ))
                                }
                            },
                            Some(b'\n') | None => {
                                return Err(self.diag(line, col, "unterminated string"))
                            }
                            Some(other) => s.push(char::from(other)),
                        }
                    }
                    Tok::Str(s)
                }
                b if b.is_ascii_digit() || b == b'-' || b == b'+' || b == b'.' => {
                    let mut s = String::new();
                    while let Some(b) = self.peek() {
                        if b.is_ascii_digit()
                            || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-' | b'_')
                        {
                            s.push(char::from(b));
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Num(s)
                }
                b if b.is_ascii_alphabetic() || b == b'_' => {
                    let mut s = String::new();
                    while let Some(b) = self.peek() {
                        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                            s.push(char::from(b));
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(s)
                }
                other => {
                    return Err(self.diag(
                        line,
                        col,
                        format!("unexpected character {:?}", char::from(other)),
                    ))
                }
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }
}

/// A parsed RON value with its source position.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    /// `(field: value, ...)`
    Struct(Vec<(String, SpannedValue)>),
    /// `[value, ...]`
    List(Vec<SpannedValue>),
    /// `"..."`
    Str(String),
    /// Numeric token, kept as source text (parsed on demand).
    Num(String),
    /// `true` / `false`.
    Bool(bool),
}

#[derive(Debug, Clone, PartialEq)]
struct SpannedValue {
    value: Value,
    line: u32,
    col: u32,
}

struct Parser<'a> {
    toks: Vec<Spanned>,
    pos: usize,
    file: &'a str,
}

impl<'a> Parser<'a> {
    fn diag_at(&self, line: u32, col: u32, msg: impl Into<String>) -> Diag {
        Diag { file: self.file.to_string(), line, col, msg: msg.into() }
    }

    fn diag_here(&self, msg: impl Into<String>) -> Diag {
        let (line, col) = self
            .toks
            .get(self.pos)
            .map(|t| (t.line, t.col))
            .or_else(|| self.toks.last().map(|t| (t.line, t.col)))
            .unwrap_or((1, 1));
        self.diag_at(line, col, msg)
    }

    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Spanned, Diag> {
        match self.bump() {
            Some(t) if t.tok == *want => Ok(t),
            Some(t) => Err(self.diag_at(t.line, t.col, format!("expected {what}"))),
            None => Err(self.diag_here(format!("expected {what}, found end of file"))),
        }
    }

    fn value(&mut self) -> Result<SpannedValue, Diag> {
        let Some(t) = self.bump() else {
            return Err(self.diag_here("expected a value, found end of file"));
        };
        let (line, col) = (t.line, t.col);
        let value = match t.tok {
            Tok::LParen => {
                let mut fields: Vec<(String, SpannedValue)> = Vec::new();
                loop {
                    match self.peek() {
                        Some(Spanned { tok: Tok::RParen, .. }) => {
                            self.bump();
                            break;
                        }
                        Some(Spanned { tok: Tok::Ident(_), .. }) => {
                            let Some(Spanned { tok: Tok::Ident(name), line, col }) = self.bump()
                            else {
                                unreachable!()
                            };
                            if fields.iter().any(|(n, _)| *n == name) {
                                return Err(self.diag_at(
                                    line,
                                    col,
                                    format!("duplicate field `{name}`"),
                                ));
                            }
                            self.expect(&Tok::Colon, "`:` after field name")?;
                            let v = self.value()?;
                            fields.push((name, v));
                            // Optional trailing comma.
                            if let Some(Spanned { tok: Tok::Comma, .. }) = self.peek() {
                                self.bump();
                            }
                        }
                        _ => return Err(self.diag_here("expected field name or `)`")),
                    }
                }
                Value::Struct(fields)
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                loop {
                    match self.peek() {
                        Some(Spanned { tok: Tok::RBracket, .. }) => {
                            self.bump();
                            break;
                        }
                        Some(_) => {
                            items.push(self.value()?);
                            if let Some(Spanned { tok: Tok::Comma, .. }) = self.peek() {
                                self.bump();
                            }
                        }
                        None => return Err(self.diag_here("unclosed `[`")),
                    }
                }
                Value::List(items)
            }
            Tok::Str(s) => Value::Str(s),
            Tok::Num(s) => Value::Num(s),
            Tok::Ident(id) if id == "true" => Value::Bool(true),
            Tok::Ident(id) if id == "false" => Value::Bool(false),
            Tok::Ident(id) => {
                return Err(self.diag_at(line, col, format!("unexpected identifier `{id}`")))
            }
            _ => return Err(self.diag_at(line, col, "expected a value")),
        };
        Ok(SpannedValue { value, line, col })
    }
}

// ---------------------------------------------------------------------------
// Typed extraction
// ---------------------------------------------------------------------------

struct Fields<'a> {
    file: &'a str,
    entries: &'a [(String, SpannedValue)],
    line: u32,
    col: u32,
    taken: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn of(file: &'a str, v: &'a SpannedValue, what: &str) -> Result<Self, Diag> {
        match &v.value {
            Value::Struct(entries) => Ok(Self {
                file,
                entries,
                line: v.line,
                col: v.col,
                taken: vec![false; entries.len()],
            }),
            _ => Err(Diag {
                file: file.to_string(),
                line: v.line,
                col: v.col,
                msg: format!("expected a {what} struct `(...)`"),
            }),
        }
    }

    fn diag(&self, line: u32, col: u32, msg: impl Into<String>) -> Diag {
        Diag { file: self.file.to_string(), line, col, msg: msg.into() }
    }

    fn get(&mut self, name: &str) -> Result<&'a SpannedValue, Diag> {
        for (i, (n, v)) in self.entries.iter().enumerate() {
            if n == name {
                self.taken[i] = true;
                return Ok(v);
            }
        }
        Err(self.diag(self.line, self.col, format!("missing required field `{name}`")))
    }

    fn get_opt(&mut self, name: &str) -> Option<&'a SpannedValue> {
        for (i, (n, v)) in self.entries.iter().enumerate() {
            if n == name {
                self.taken[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn finish(self) -> Result<(), Diag> {
        for (i, (n, v)) in self.entries.iter().enumerate() {
            if !self.taken[i] {
                return Err(self.diag(v.line, v.col, format!("unknown field `{n}`")));
            }
        }
        Ok(())
    }

    fn str_of(&self, v: &SpannedValue, name: &str) -> Result<String, Diag> {
        match &v.value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(self.diag(v.line, v.col, format!("field `{name}` must be a string"))),
        }
    }

    fn f64_of(&self, v: &SpannedValue, name: &str) -> Result<f64, Diag> {
        match &v.value {
            Value::Num(s) => {
                let cleaned: String = s.chars().filter(|&c| c != '_').collect();
                let x: f64 = cleaned.parse().map_err(|_| {
                    self.diag(v.line, v.col, format!("field `{name}`: invalid number `{s}`"))
                })?;
                if !x.is_finite() {
                    return Err(self.diag(v.line, v.col, format!("field `{name}` must be finite")));
                }
                Ok(x)
            }
            _ => Err(self.diag(v.line, v.col, format!("field `{name}` must be a number"))),
        }
    }

    fn u64_of(&self, v: &SpannedValue, name: &str) -> Result<u64, Diag> {
        match &v.value {
            Value::Num(s) => {
                let cleaned: String = s.chars().filter(|&c| c != '_').collect();
                cleaned.parse().map_err(|_| {
                    self.diag(
                        v.line,
                        v.col,
                        format!("field `{name}` must be a non-negative integer, got `{s}`"),
                    )
                })
            }
            _ => Err(self.diag(v.line, v.col, format!("field `{name}` must be an integer"))),
        }
    }

    fn bool_of(&self, v: &SpannedValue, name: &str) -> Result<bool, Diag> {
        match v.value {
            Value::Bool(b) => Ok(b),
            _ => Err(self.diag(v.line, v.col, format!("field `{name}` must be true or false"))),
        }
    }

    fn f64_list_of(&self, v: &SpannedValue, name: &str) -> Result<Vec<f64>, Diag> {
        match &v.value {
            Value::List(items) => items.iter().map(|item| self.f64_of(item, name)).collect(),
            _ => Err(self.diag(v.line, v.col, format!("field `{name}` must be a list"))),
        }
    }

    fn list_of(&self, v: &'a SpannedValue, name: &str) -> Result<&'a [SpannedValue], Diag> {
        match &v.value {
            Value::List(items) => Ok(items),
            _ => Err(self.diag(v.line, v.col, format!("field `{name}` must be a list"))),
        }
    }
}

macro_rules! req_f64 {
    ($f:expr, $name:literal) => {{
        let v = $f.get($name)?;
        $f.f64_of(v, $name)?
    }};
}

fn parse_chip(file: &str, v: &SpannedValue) -> Result<ChipDef, Diag> {
    let mut f = Fields::of(file, v, "chip")?;
    let name = {
        let v = f.get("name")?;
        f.str_of(v, "name")?
    };
    let description = {
        let v = f.get("description")?;
        f.str_of(v, "description")?
    };
    let default = match f.get_opt("default") {
        Some(v) => f.bool_of(v, "default")?,
        None => false,
    };
    let fidelity = {
        let v = f.get("fidelity")?;
        let s = f.str_of(v, "fidelity")?;
        FidelityDef::from_ron(&s).ok_or_else(|| {
            f.diag(
                v.line,
                v.col,
                format!(
                    "unknown fidelity `{s}` (expected cell-exact, page-analytic, \
                     or block-aggregate)"
                ),
            )
        })?
    };
    let states = {
        let v = f.get("states")?;
        let items = f.list_of(v, "states")?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let mut sf = Fields::of(file, item, "state")?;
            let mean = req_f64!(sf, "mean");
            let sigma = req_f64!(sf, "sigma");
            sf.finish()?;
            out.push(StateDef { mean, sigma });
        }
        out
    };
    let refs = {
        let v = f.get("refs")?;
        f.f64_list_of(v, "refs")?
    };
    let retry_shifts = {
        let v = f.get("retry_shifts")?;
        f.f64_list_of(v, "retry_shifts")?
    };
    let reread_va_raises = {
        let v = f.get("reread_va_raises")?;
        f.f64_list_of(v, "reread_va_raises")?
    };
    let anchors = {
        let v = f.get("anchors")?;
        let items = f.list_of(v, "anchors")?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let mut af = Fields::of(file, item, "anchor")?;
            let pe = {
                let v = af.get("pe")?;
                af.u64_of(v, "pe")?
            };
            let days = req_f64!(af, "days");
            let reads = {
                let v = af.get("reads")?;
                af.u64_of(v, "reads")?
            };
            let vpass = req_f64!(af, "vpass");
            let rber = req_f64!(af, "rber");
            af.finish()?;
            out.push(AnchorDef { pe, days, reads, vpass, rber });
        }
        out
    };
    let chip = ChipDef {
        name,
        description,
        default,
        fidelity,
        ecc_capability_rber: req_f64!(f, "ecc_capability_rber"),
        states,
        refs,
        min_vpass: req_f64!(f, "min_vpass"),
        pe_rber_coeff: req_f64!(f, "pe_rber_coeff"),
        pe_rber_exp: req_f64!(f, "pe_rber_exp"),
        pe_sigma_widen_coeff: req_f64!(f, "pe_sigma_widen_coeff"),
        pe_sigma_widen_exp: req_f64!(f, "pe_sigma_widen_exp"),
        retention_rate: req_f64!(f, "retention_rate"),
        retention_pe_exp: req_f64!(f, "retention_pe_exp"),
        retention_time_exp: req_f64!(f, "retention_time_exp"),
        retention_leak_sigma_ln: req_f64!(f, "retention_leak_sigma_ln"),
        rd_alpha: req_f64!(f, "rd_alpha"),
        rd_kappa: req_f64!(f, "rd_kappa"),
        rd_pe_exp: req_f64!(f, "rd_pe_exp"),
        rd_pe_ref: req_f64!(f, "rd_pe_ref"),
        rd_vpass_lambda: req_f64!(f, "rd_vpass_lambda"),
        rd_susceptibility_pareto_a: req_f64!(f, "rd_susceptibility_pareto_a"),
        rd_susceptibility_cap: req_f64!(f, "rd_susceptibility_cap"),
        rd_neighbor_boost: req_f64!(f, "rd_neighbor_boost"),
        outlier_prob: req_f64!(f, "outlier_prob"),
        outlier_base: req_f64!(f, "outlier_base"),
        outlier_scale: req_f64!(f, "outlier_scale"),
        outlier_cap: req_f64!(f, "outlier_cap"),
        program_interference_sigma: req_f64!(f, "program_interference_sigma"),
        analytic_ret_coeff: req_f64!(f, "analytic_ret_coeff"),
        analytic_rd_slope: req_f64!(f, "analytic_rd_slope"),
        analytic_rd_sat: req_f64!(f, "analytic_rd_sat"),
        retry_shifts,
        reread_va_raises,
        anchors,
    };
    f.finish()?;
    Ok(chip)
}

/// Parses one vendor file. `file` labels diagnostics (usually the path).
///
/// # Errors
///
/// Returns the first parse or shape error with its line/column.
pub fn parse_vendor_file(src: &str, file: &str) -> Result<VendorFile, Diag> {
    let toks = Lexer::new(src, file).tokens()?;
    let mut p = Parser { toks, pos: 0, file };
    let root = p.value()?;
    if p.pos != p.toks.len() {
        return Err(p.diag_here("trailing content after the vendor struct"));
    }
    let mut f = Fields::of(file, &root, "vendor")?;
    let vendor = {
        let v = f.get("vendor")?;
        f.str_of(v, "vendor")?
    };
    let chips = {
        let v = f.get("chips")?;
        let items = f.list_of(v, "chips")?;
        items.iter().map(|item| parse_chip(file, item)).collect::<Result<Vec<_>, _>>()?
    };
    f.finish()?;
    Ok(VendorFile { vendor, chips })
}

// ---------------------------------------------------------------------------
// Closed-form model mirror (anchor validation)
// ---------------------------------------------------------------------------

/// The closed-form RBER model at one operating point, re-derived from the
/// chip definition exactly as `rd_flash::AnalyticModel::from_chip` does
/// (with [`ANCHOR_WORDLINES`] wordlines per block for the pass-through
/// amplitude).
///
/// This duplicates `rd_flash::analytic` on purpose: `rd-flash` build-depends
/// on this crate, so the dependency cannot point the other way. The
/// `ext_chip_sweep` bench re-checks every anchor against the *real* model at
/// run time, which catches any drift between the two copies.
pub fn model_rber(c: &ChipDef, pe: u64, days: f64, reads: u64, vpass: f64) -> f64 {
    let rber_pe = c.pe_rber_coeff * (pe as f64 / 1000.0).powf(c.pe_rber_exp);
    let retention = if days <= 0.0 {
        0.0
    } else {
        c.analytic_ret_coeff
            * (pe as f64 / 1000.0).powf(c.retention_pe_exp)
            * days.powf(c.retention_time_exp)
    };
    let slope = c.analytic_rd_slope
        * (pe.max(1) as f64 / c.rd_pe_ref).powf(c.rd_pe_exp)
        * ((vpass - NOMINAL_VPASS) / c.rd_vpass_lambda).exp();
    let read_disturb = c.analytic_rd_sat * (slope * reads as f64 / c.analytic_rd_sat).ln_1p();
    let w = ANCHOR_WORDLINES.max(2) as f64;
    let pt_amp = 0.5 * (w - 1.0) * (1.0 / c.states.len() as f64) * c.outlier_prob;
    let drift = 0.5
        * c.outlier_base
        * c.retention_rate
        * (pe as f64 / 1000.0).powf(c.retention_pe_exp)
        * days.max(0.0).powf(c.retention_time_exp);
    let q_cap = (-(c.outlier_cap - c.outlier_base) / c.outlier_scale).exp();
    let exceed =
        ((-(vpass - c.outlier_base + drift) / c.outlier_scale).exp() - q_cap) / (1.0 - q_cap);
    let passthrough = pt_amp * exceed.clamp(0.0, 1.0);
    rber_pe + retention + read_disturb + passthrough
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

fn validate_chip(c: &ChipDef) -> Result<(), String> {
    let n = c.states.len();
    if !(n.is_power_of_two() && (2..=MAX_STATES).contains(&n)) {
        return Err(format!("state count {n} must be a power of two in 2..={MAX_STATES}"));
    }
    if c.fidelity == FidelityDef::CellExact && n != 4 {
        return Err(format!("fidelity cell-exact is MLC-only, chip declares {n} states"));
    }
    if c.name.is_empty()
        || !c.name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
    {
        return Err(format!("chip name `{}` must be non-empty kebab-case", c.name));
    }
    for w in c.states.windows(2) {
        if w[0].mean >= w[1].mean {
            return Err(format!(
                "state means must be strictly increasing ({} >= {})",
                w[0].mean, w[1].mean
            ));
        }
    }
    for s in &c.states {
        if s.sigma <= 0.0 {
            return Err(format!("state sigma {} must be positive", s.sigma));
        }
    }
    if c.refs.len() != n - 1 {
        return Err(format!("{} refs cannot separate {n} states (need {})", c.refs.len(), n - 1));
    }
    for (i, &v) in c.refs.iter().enumerate() {
        if !(c.states[i].mean < v && v < c.states[i + 1].mean) {
            return Err(format!(
                "ref {i} ({v}) must sit between state means {} and {}",
                c.states[i].mean,
                c.states[i + 1].mean
            ));
        }
    }
    let top = c.states[n - 1];
    if top.mean + 4.0 * top.sigma >= NOMINAL_VPASS {
        return Err(format!(
            "top state ({} + 4*{}) must clear the nominal Vpass {NOMINAL_VPASS}",
            top.mean, top.sigma
        ));
    }
    if !(c.min_vpass > 0.0 && c.min_vpass < NOMINAL_VPASS) {
        return Err(format!("min_vpass {} outside (0, {NOMINAL_VPASS})", c.min_vpass));
    }
    if !(c.outlier_base < c.outlier_cap && c.outlier_cap < NOMINAL_VPASS) {
        return Err(format!(
            "outlier tail [{}, {}] must sit below the nominal Vpass",
            c.outlier_base, c.outlier_cap
        ));
    }
    if !(c.ecc_capability_rber > 0.0 && c.ecc_capability_rber < 0.1) {
        return Err(format!("ecc_capability_rber {} outside (0, 0.1)", c.ecc_capability_rber));
    }
    if c.retry_shifts.is_empty() || c.reread_va_raises.is_empty() {
        return Err("retry_shifts and reread_va_raises must be non-empty".into());
    }
    for coeff in [
        ("pe_rber_coeff", c.pe_rber_coeff),
        ("retention_rate", c.retention_rate),
        ("rd_alpha", c.rd_alpha),
        ("rd_kappa", c.rd_kappa),
        ("rd_pe_ref", c.rd_pe_ref),
        ("rd_vpass_lambda", c.rd_vpass_lambda),
        ("rd_susceptibility_pareto_a", c.rd_susceptibility_pareto_a),
        ("outlier_prob", c.outlier_prob),
        ("outlier_scale", c.outlier_scale),
        ("analytic_ret_coeff", c.analytic_ret_coeff),
        ("analytic_rd_slope", c.analytic_rd_slope),
        ("analytic_rd_sat", c.analytic_rd_sat),
    ] {
        if coeff.1 <= 0.0 {
            return Err(format!("{} must be positive, got {}", coeff.0, coeff.1));
        }
    }
    if c.anchors.is_empty() {
        return Err("at least one calibration anchor is required".into());
    }
    for a in &c.anchors {
        if !(a.rber > 0.0 && a.rber < 1.0) {
            return Err(format!("anchor rber {} outside (0, 1)", a.rber));
        }
        if !(a.vpass >= c.min_vpass && a.vpass <= NOMINAL_VPASS) {
            return Err(format!(
                "anchor vpass {} outside the chip's [{}, {NOMINAL_VPASS}] range",
                a.vpass, c.min_vpass
            ));
        }
        if a.days < 0.0 {
            return Err(format!("anchor days {} must be non-negative", a.days));
        }
        let model = model_rber(c, a.pe, a.days, a.reads, a.vpass);
        let err = (model.log10() - a.rber.log10()).abs();
        if err > ANCHOR_TOL_LOG10 {
            return Err(format!(
                "anchor (pe={}, days={}, reads={}, vpass={}) declares rber {:.3e} but the \
                 closed-form model gives {:.3e} ({:.2} decades apart, tolerance {})",
                a.pe, a.days, a.reads, a.vpass, a.rber, model, err, ANCHOR_TOL_LOG10
            ));
        }
    }
    for w in c.anchors.windows(2) {
        let ka = (w[0].pe, w[0].days.to_bits(), w[0].reads);
        let kb = (w[1].pe, w[1].days.to_bits(), w[1].reads);
        if ka >= kb {
            return Err(format!(
                "anchors must be sorted by (pe, days, reads) without duplicates: \
                 (pe={}, days={}, reads={}) then (pe={}, days={}, reads={})",
                w[0].pe, w[0].days, w[0].reads, w[1].pe, w[1].days, w[1].reads
            ));
        }
        // More wear / age / disturb at the same Vpass never lowers RBER
        // (only comparable when every stress axis is non-decreasing).
        if w[0].vpass == w[1].vpass
            && w[0].pe <= w[1].pe
            && w[0].days <= w[1].days
            && w[0].reads <= w[1].reads
            && w[1].rber < w[0].rber
        {
            return Err(format!(
                "anchor rber must be monotone along the (pe, days, reads) order at fixed \
                 vpass: {:.3e} then {:.3e}",
                w[0].rber, w[1].rber
            ));
        }
    }
    Ok(())
}

/// Validates a set of parsed vendor files as one database.
///
/// # Errors
///
/// Returns a list of human-readable problems (chip-scoped ones are prefixed
/// with `vendor/chip:`). Empty result means the database is sound.
pub fn validate(files: &[VendorFile]) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let mut vendors: Vec<&str> = Vec::new();
    let mut names: Vec<&str> = Vec::new();
    let mut defaults = 0usize;
    for vf in files {
        if vendors.contains(&vf.vendor.as_str()) {
            problems.push(format!("duplicate vendor label `{}`", vf.vendor));
        }
        vendors.push(&vf.vendor);
        if vf.chips.is_empty() {
            problems.push(format!("vendor `{}` declares no chips", vf.vendor));
        }
        for c in &vf.chips {
            if names.contains(&c.name.as_str()) {
                problems.push(format!("duplicate chip name `{}`", c.name));
            }
            names.push(&c.name);
            if c.default {
                defaults += 1;
            }
            if let Err(e) = validate_chip(c) {
                problems.push(format!("{}/{}: {e}", vf.vendor, c.name));
            }
        }
    }
    match defaults {
        1 => {}
        n => problems.push(format!("exactly one chip must set `default: true`, found {n}")),
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

/// Formats an `f64` as a Rust literal that parses back to the identical bit
/// pattern (`{:?}` is Rust's shortest round-trip form).
fn lit(x: f64) -> String {
    let s = format!("{x:?}");
    // `{:?}` always includes a `.` or an exponent for finite floats, so the
    // token is already a float literal.
    s
}

fn lit_list(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|&x| lit(x)).collect();
    items.join(", ")
}

/// Emits the generated Rust source for the database. The output is included
/// into `rd_flash::chips` (so `ChipSpec`, `CalibrationAnchor`, `ChipParams`,
/// `StateParams`, `VoltageRefs`, and `ReadFidelity` are in scope there).
///
/// Call [`validate`] first; this function assumes a sound database and
/// panics on an empty one.
pub fn emit(files: &[VendorFile]) -> String {
    let mut chips: Vec<(&str, &ChipDef)> = Vec::new();
    for vf in files {
        for c in &vf.chips {
            chips.push((&vf.vendor, c));
        }
    }
    assert!(!chips.is_empty(), "cannot emit an empty chip database");
    // Default chip first: index 0 is the repo default everywhere.
    chips.sort_by_key(|(_, c)| (!c.default, c.name.clone()));
    let default_name = &chips[0].1.name;

    let mut out = String::new();
    out.push_str(
        "// GENERATED by chips-codegen from chips/vendors/*.ron — do not edit.\n\
         // Regenerated on every build; edit the RON database instead.\n\n",
    );
    out.push_str(&format!(
        "/// Names of every chip in the database (the default chip first,\n\
         /// the rest sorted by name).\n\
         pub const NAMES: &[&str] = &[\n{}];\n\n",
        chips.iter().map(|(_, c)| format!("    {:?},\n", c.name)).collect::<String>()
    ));
    out.push_str(&format!(
        "/// Name of the repository default chip (bit-identical to\n\
         /// [`ChipParams::default`]).\n\
         pub const DEFAULT_CHIP: &str = {default_name:?};\n\n"
    ));

    for (i, (_, c)) in chips.iter().enumerate() {
        out.push_str(&format!(
            "static ANCHORS_{i}: &[CalibrationAnchor] = &[\n{}];\n",
            c.anchors
                .iter()
                .map(|a| format!(
                    "    CalibrationAnchor {{ pe_cycles: {}, days: {}, reads: {}, \
                     vpass: {}, rber: {} }},\n",
                    a.pe,
                    lit(a.days),
                    a.reads,
                    lit(a.vpass),
                    lit(a.rber)
                ))
                .collect::<String>()
        ));
    }
    out.push('\n');

    out.push_str(
        "/// Builds the spec at `index` of [`NAMES`]. Prefer [`get`]/[`all`].\n\
         pub(super) fn spec(index: usize) -> ChipSpec {\n    match index {\n",
    );
    for (i, (vendor, c)) in chips.iter().enumerate() {
        out.push_str(&format!(
            "        {i} => ChipSpec {{\n\
             \x20           name: {name:?},\n\
             \x20           vendor: {vendor:?},\n\
             \x20           description: {desc:?},\n\
             \x20           ecc_capability_rber: {ecc},\n\
             \x20           anchors: ANCHORS_{i},\n\
             \x20           params: ChipParams {{\n",
            name = c.name,
            vendor = vendor,
            desc = c.description,
            ecc = lit(c.ecc_capability_rber),
        ));
        out.push_str("                states: vec![\n");
        for s in &c.states {
            out.push_str(&format!(
                "                    StateParams {{ mean: {}, sigma: {} }},\n",
                lit(s.mean),
                lit(s.sigma)
            ));
        }
        out.push_str("                ],\n");
        out.push_str(&format!(
            "                refs: VoltageRefs::from_levels(&[{}]),\n",
            lit_list(&c.refs)
        ));
        out.push_str(&format!("                min_vpass: {},\n", lit(c.min_vpass)));
        out.push_str(&format!("                fidelity: {},\n", c.fidelity.as_rust()));
        for (field, value) in [
            ("pe_rber_coeff", c.pe_rber_coeff),
            ("pe_rber_exp", c.pe_rber_exp),
            ("pe_sigma_widen_coeff", c.pe_sigma_widen_coeff),
            ("pe_sigma_widen_exp", c.pe_sigma_widen_exp),
            ("retention_rate", c.retention_rate),
            ("retention_pe_exp", c.retention_pe_exp),
            ("retention_time_exp", c.retention_time_exp),
            ("retention_leak_sigma_ln", c.retention_leak_sigma_ln),
            ("rd_alpha", c.rd_alpha),
            ("rd_kappa", c.rd_kappa),
            ("rd_pe_exp", c.rd_pe_exp),
            ("rd_pe_ref", c.rd_pe_ref),
            ("rd_vpass_lambda", c.rd_vpass_lambda),
            ("rd_susceptibility_pareto_a", c.rd_susceptibility_pareto_a),
            ("rd_susceptibility_cap", c.rd_susceptibility_cap),
            ("rd_neighbor_boost", c.rd_neighbor_boost),
            ("outlier_prob", c.outlier_prob),
            ("outlier_base", c.outlier_base),
            ("outlier_scale", c.outlier_scale),
            ("outlier_cap", c.outlier_cap),
            ("program_interference_sigma", c.program_interference_sigma),
            ("analytic_ret_coeff", c.analytic_ret_coeff),
            ("analytic_rd_slope", c.analytic_rd_slope),
            ("analytic_rd_sat", c.analytic_rd_sat),
        ] {
            out.push_str(&format!("                {field}: {},\n", lit(value)));
        }
        out.push_str(&format!(
            "                retry_shifts: vec![{}],\n",
            lit_list(&c.retry_shifts)
        ));
        out.push_str(&format!(
            "                reread_va_raises: vec![{}],\n",
            lit_list(&c.reread_va_raises)
        ));
        out.push_str("            },\n        },\n");
    }
    out.push_str("        _ => panic!(\"chip index {index} out of range\"),\n    }\n}\n");
    out
}

// ---------------------------------------------------------------------------
// RON writer (round-trip testing and `--fmt` style output)
// ---------------------------------------------------------------------------

fn ron_f64(x: f64) -> String {
    format!("{x:?}")
}

/// Serializes a vendor file back to the RON subset [`parse_vendor_file`]
/// accepts. `parse(to_ron(f)) == f` for every representable file — the
/// round-trip property the codegen test suite checks.
pub fn to_ron(vf: &VendorFile) -> String {
    let mut out = String::new();
    out.push_str("(\n");
    out.push_str(&format!("    vendor: {:?},\n", vf.vendor));
    out.push_str("    chips: [\n");
    for c in &vf.chips {
        out.push_str("        (\n");
        out.push_str(&format!("            name: {:?},\n", c.name));
        out.push_str(&format!("            description: {:?},\n", c.description));
        if c.default {
            out.push_str("            default: true,\n");
        }
        out.push_str(&format!("            fidelity: {:?},\n", c.fidelity.as_ron()));
        out.push_str(&format!(
            "            ecc_capability_rber: {},\n",
            ron_f64(c.ecc_capability_rber)
        ));
        out.push_str("            states: [\n");
        for s in &c.states {
            out.push_str(&format!(
                "                (mean: {}, sigma: {}),\n",
                ron_f64(s.mean),
                ron_f64(s.sigma)
            ));
        }
        out.push_str("            ],\n");
        out.push_str(&format!(
            "            refs: [{}],\n",
            c.refs.iter().map(|&x| ron_f64(x)).collect::<Vec<_>>().join(", ")
        ));
        for (field, value) in [
            ("min_vpass", c.min_vpass),
            ("pe_rber_coeff", c.pe_rber_coeff),
            ("pe_rber_exp", c.pe_rber_exp),
            ("pe_sigma_widen_coeff", c.pe_sigma_widen_coeff),
            ("pe_sigma_widen_exp", c.pe_sigma_widen_exp),
            ("retention_rate", c.retention_rate),
            ("retention_pe_exp", c.retention_pe_exp),
            ("retention_time_exp", c.retention_time_exp),
            ("retention_leak_sigma_ln", c.retention_leak_sigma_ln),
            ("rd_alpha", c.rd_alpha),
            ("rd_kappa", c.rd_kappa),
            ("rd_pe_exp", c.rd_pe_exp),
            ("rd_pe_ref", c.rd_pe_ref),
            ("rd_vpass_lambda", c.rd_vpass_lambda),
            ("rd_susceptibility_pareto_a", c.rd_susceptibility_pareto_a),
            ("rd_susceptibility_cap", c.rd_susceptibility_cap),
            ("rd_neighbor_boost", c.rd_neighbor_boost),
            ("outlier_prob", c.outlier_prob),
            ("outlier_base", c.outlier_base),
            ("outlier_scale", c.outlier_scale),
            ("outlier_cap", c.outlier_cap),
            ("program_interference_sigma", c.program_interference_sigma),
            ("analytic_ret_coeff", c.analytic_ret_coeff),
            ("analytic_rd_slope", c.analytic_rd_slope),
            ("analytic_rd_sat", c.analytic_rd_sat),
        ] {
            out.push_str(&format!("            {field}: {},\n", ron_f64(value)));
        }
        out.push_str(&format!(
            "            retry_shifts: [{}],\n",
            c.retry_shifts.iter().map(|&x| ron_f64(x)).collect::<Vec<_>>().join(", ")
        ));
        out.push_str(&format!(
            "            reread_va_raises: [{}],\n",
            c.reread_va_raises.iter().map(|&x| ron_f64(x)).collect::<Vec<_>>().join(", ")
        ));
        out.push_str("            anchors: [\n");
        for a in &c.anchors {
            out.push_str(&format!(
                "                (pe: {}, days: {}, reads: {}, vpass: {}, rber: {}),\n",
                a.pe,
                ron_f64(a.days),
                a.reads,
                ron_f64(a.vpass),
                ron_f64(a.rber)
            ));
        }
        out.push_str("            ],\n");
        out.push_str("        ),\n");
    }
    out.push_str("    ],\n)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlc_chip(name: &str, default: bool) -> ChipDef {
        ChipDef {
            name: name.to_string(),
            description: "test chip".to_string(),
            default,
            fidelity: FidelityDef::CellExact,
            ecc_capability_rber: 1.0e-3,
            states: vec![
                StateDef { mean: 40.0, sigma: 15.0 },
                StateDef { mean: 160.0, sigma: 13.0 },
                StateDef { mean: 290.0, sigma: 13.0 },
                StateDef { mean: 420.0, sigma: 12.0 },
            ],
            refs: vec![100.0, 225.0, 355.0],
            min_vpass: 460.8,
            pe_rber_coeff: 1.6e-5,
            pe_rber_exp: 1.6,
            pe_sigma_widen_coeff: 0.02,
            pe_sigma_widen_exp: 0.7,
            retention_rate: 1.6e-4,
            retention_pe_exp: 1.2,
            retention_time_exp: 0.85,
            retention_leak_sigma_ln: 0.75,
            rd_alpha: 1.1e-7,
            rd_kappa: 25.0,
            rd_pe_exp: 1.45,
            rd_pe_ref: 2000.0,
            rd_vpass_lambda: 4.0,
            rd_susceptibility_pareto_a: 0.85,
            rd_susceptibility_cap: 1.0e5,
            rd_neighbor_boost: 1.5,
            outlier_prob: 7.6e-4,
            outlier_base: 460.0,
            outlier_scale: 12.0,
            outlier_cap: 508.0,
            program_interference_sigma: 2.0,
            analytic_ret_coeff: 2.3e-6,
            analytic_rd_slope: 1.0e-9,
            analytic_rd_sat: 2.0e-2,
            retry_shifts: vec![4.0, 8.0, 12.0, 16.0, -4.0],
            reread_va_raises: vec![10.0, 20.0, 30.0],
            anchors: vec![AnchorDef {
                pe: 8_000,
                days: 0.0,
                reads: 0,
                vpass: NOMINAL_VPASS,
                rber: 4.456e-4,
            }],
        }
    }

    #[test]
    fn ron_round_trips() {
        let vf = VendorFile { vendor: "vendor-t".into(), chips: vec![mlc_chip("t-mlc", true)] };
        let ron = to_ron(&vf);
        let back = parse_vendor_file(&ron, "t.ron").unwrap();
        assert_eq!(back, vf);
    }

    #[test]
    fn parse_reports_line_and_column() {
        let src = "(\n    vendor: \"v\",\n    chips: [\n        (name: 3),\n    ],\n)";
        let err = parse_vendor_file(src, "bad.ron").unwrap_err();
        assert_eq!(err.line, 4, "{err}");
        assert!(err.msg.contains("must be a string"), "{err}");
    }

    #[test]
    fn duplicate_and_unknown_fields_rejected() {
        let err =
            parse_vendor_file("(vendor: \"a\", vendor: \"b\", chips: [])", "d.ron").unwrap_err();
        assert!(err.msg.contains("duplicate field"), "{err}");
        let err = parse_vendor_file("(vendor: \"a\", chips: [], zzz: 1)", "d.ron").unwrap_err();
        assert!(err.msg.contains("unknown field `zzz`"), "{err}");
    }

    #[test]
    fn validation_catches_database_level_problems() {
        let a = VendorFile { vendor: "vendor-a".into(), chips: vec![mlc_chip("dup", true)] };
        let b = VendorFile { vendor: "vendor-b".into(), chips: vec![mlc_chip("dup", true)] };
        let problems = validate(&[a, b]).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("duplicate chip name")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("exactly one chip")), "{problems:?}");
    }

    #[test]
    fn validation_catches_bad_anchor() {
        let mut chip = mlc_chip("t-mlc", true);
        chip.anchors[0].rber = 1.0e-1; // 2+ decades off the model
        let vf = VendorFile { vendor: "vendor-t".into(), chips: vec![chip] };
        let problems = validate(&[vf]).unwrap_err();
        assert!(problems[0].contains("closed-form model"), "{problems:?}");
    }

    #[test]
    fn validation_requires_sorted_anchors() {
        let mut chip = mlc_chip("t-mlc", true);
        let a0 = chip.anchors[0];
        chip.anchors = vec![
            AnchorDef { pe: 8_000, reads: 100, ..a0 },
            AnchorDef {
                pe: 8_000,
                reads: 0,
                rber: model_rber(&chip, 8_000, 0.0, 0, NOMINAL_VPASS),
                ..a0
            },
        ];
        chip.anchors[0].rber = model_rber(&chip, 8_000, 0.0, 100, NOMINAL_VPASS);
        let vf = VendorFile { vendor: "vendor-t".into(), chips: vec![chip] };
        let problems = validate(&[vf]).unwrap_err();
        assert!(problems[0].contains("sorted"), "{problems:?}");
    }

    #[test]
    fn emitted_code_mentions_every_chip_once() {
        let vf = VendorFile {
            vendor: "vendor-t".into(),
            chips: vec![mlc_chip("t-mlc", true), mlc_chip("t-mlc-b", false)],
        };
        validate(std::slice::from_ref(&vf)).unwrap();
        let code = emit(&[vf]);
        assert_eq!(code.matches("\"t-mlc\"").count(), 3, "NAMES + DEFAULT_CHIP + spec entry");
        assert_eq!(code.matches("\"t-mlc-b\"").count(), 2, "NAMES entry + spec entry");
        assert!(code.contains("pub const DEFAULT_CHIP: &str = \"t-mlc\""));
        assert!(code.contains("ANCHORS_0"));
        assert!(code.contains("ReadFidelity::CellExact"));
    }

    #[test]
    fn float_literals_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 4.456e-4, 460.8, 0.9 * NOMINAL_VPASS, f64::MIN_POSITIVE] {
            let s = lit(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }
}
