//! Standalone chip-database linter: `chips-codegen --check [DIR|FILE...]`.
//!
//! Runs the same parse + validation pass `rd-flash`'s `build.rs` performs,
//! without building the workspace — CI runs it as an early lint step next to
//! `fmt`/`clippy`. Exit status 0 means the database is sound; diagnostics go
//! to stderr with `file:line:col:` prefixes so editors can jump to them.
//!
//! With no paths, lints `chips/vendors` relative to the current directory.
//! `--emit <out>` additionally writes the generated Rust (handy for
//! inspecting what `build.rs` will produce).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect_ron_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut in_dir: Vec<PathBuf> = std::fs::read_dir(p)
                .map_err(|e| format!("{}: {e}", p.display()))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "ron"))
                .collect();
            in_dir.sort();
            files.extend(in_dir);
        } else {
            files.push(p.clone());
        }
    }
    if files.is_empty() {
        return Err("no .ron files found".to_string());
    }
    Ok(files)
}

fn run() -> Result<(), String> {
    let mut check = false;
    let mut emit_to: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--emit" => {
                let out = args.next().ok_or("--emit requires an output path")?;
                emit_to = Some(PathBuf::from(out));
            }
            "--help" | "-h" => {
                println!(
                    "usage: chips-codegen --check [--emit OUT] [DIR|FILE...]\n\
                     Lints the chip database (default: ./chips/vendors)."
                );
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (try --help)"));
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if !check && emit_to.is_none() {
        return Err("nothing to do: pass --check and/or --emit OUT (try --help)".to_string());
    }
    if paths.is_empty() {
        paths.push(Path::new("chips/vendors").to_path_buf());
    }

    let files = collect_ron_files(&paths)?;
    let mut parsed = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let vf = chips_codegen::parse_vendor_file(&src, &path.display().to_string())
            .map_err(|d| d.to_string())?;
        parsed.push(vf);
    }
    chips_codegen::validate(&parsed).map_err(|problems| problems.join("\n"))?;

    let total: usize = parsed.iter().map(|vf| vf.chips.len()).sum();
    eprintln!(
        "chip database OK: {} vendors, {total} chips ({})",
        parsed.len(),
        parsed
            .iter()
            .flat_map(|vf| vf.chips.iter().map(|c| c.name.as_str()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let Some(out) = emit_to {
        let code = chips_codegen::emit(&parsed);
        std::fs::write(&out, code).map_err(|e| format!("{}: {e}", out.display()))?;
        eprintln!("wrote {}", out.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
