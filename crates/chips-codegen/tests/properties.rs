//! Property tests for the chip-database codegen: random vendor files must
//! survive a full serialize → parse round trip, and the emitter must stay
//! loss-free on the float values it writes into generated Rust.

use chips_codegen::{
    parse_vendor_file, to_ron, AnchorDef, ChipDef, FidelityDef, StateDef, VendorFile,
};
use proptest::prelude::*;

/// Builds a structurally valid chip (parseable; not necessarily passing
/// database validation — round-tripping must not depend on validity).
#[allow(clippy::too_many_arguments)]
fn chip(
    name_suffix: u32,
    bits: u32,
    base_mean: f64,
    spacing: f64,
    sigma: f64,
    coeff: f64,
    n_retry: usize,
    n_anchors: usize,
) -> ChipDef {
    let n = 1usize << bits;
    let states: Vec<StateDef> =
        (0..n).map(|i| StateDef { mean: base_mean + spacing * i as f64, sigma }).collect();
    let refs: Vec<f64> = (0..n - 1).map(|i| base_mean + spacing * (i as f64 + 0.5)).collect();
    ChipDef {
        name: format!("pt-chip-{name_suffix}"),
        description: format!("proptest chip #{name_suffix}"),
        default: name_suffix == 0,
        fidelity: match bits {
            2 => FidelityDef::CellExact,
            3 => FidelityDef::PageAnalytic,
            _ => FidelityDef::BlockAggregate,
        },
        ecc_capability_rber: coeff * 10.0,
        states,
        refs,
        min_vpass: 460.0 + coeff,
        pe_rber_coeff: coeff * 1.0e-4,
        pe_rber_exp: 1.0 + coeff,
        pe_sigma_widen_coeff: coeff * 0.1,
        pe_sigma_widen_exp: 0.5 + coeff,
        retention_rate: coeff * 1.0e-3,
        retention_pe_exp: 1.0 + coeff,
        retention_time_exp: coeff,
        retention_leak_sigma_ln: coeff,
        rd_alpha: coeff * 1.0e-6,
        rd_kappa: 20.0 + coeff,
        rd_pe_exp: 1.0 + coeff,
        rd_pe_ref: 1000.0 + coeff,
        rd_vpass_lambda: 3.0 + coeff,
        rd_susceptibility_pareto_a: coeff,
        rd_susceptibility_cap: 1.0e5,
        rd_neighbor_boost: coeff,
        outlier_prob: coeff * 1.0e-3,
        outlier_base: 430.0 + coeff,
        outlier_scale: 10.0 + coeff,
        outlier_cap: 500.0 + coeff,
        program_interference_sigma: coeff,
        analytic_ret_coeff: coeff * 1.0e-5,
        analytic_rd_slope: coeff * 1.0e-9,
        analytic_rd_sat: coeff * 0.1,
        retry_shifts: (1..=n_retry).map(|i| i as f64 * (1.0 + coeff)).collect(),
        reread_va_raises: (1..=n_retry).map(|i| i as f64 * 7.0).collect(),
        anchors: (0..n_anchors)
            .map(|i| AnchorDef {
                pe: 1000 * (i as u64 + 1),
                days: i as f64 * coeff,
                reads: 10_000 * i as u64,
                vpass: 512.0 - i as f64,
                rber: coeff * 1.0e-4 * (i + 1) as f64,
            })
            .collect(),
    }
}

proptest! {
    #[test]
    fn vendor_file_round_trips_through_ron(
        n_chips in 1usize..4,
        bits in 1u32..5,
        base_mean in 20.0f64..50.0,
        spacing in 25.0f64..120.0,
        sigma in 2.0f64..16.0,
        coeff in 0.01f64..0.99,
        n_retry in 1usize..8,
        n_anchors in 1usize..5,
    ) {
        let vf = VendorFile {
            vendor: "vendor-pt".to_string(),
            chips: (0..n_chips)
                .map(|i| chip(i as u32, bits, base_mean, spacing, sigma, coeff, n_retry, n_anchors))
                .collect(),
        };
        let ron = to_ron(&vf);
        let back = parse_vendor_file(&ron, "roundtrip.ron")
            .map_err(|d| TestCaseError::fail(format!("{d}")))?;
        prop_assert_eq!(back, vf);
        // Serialization is deterministic: a second trip is byte-identical.
        let again = parse_vendor_file(&to_ron(&parse_vendor_file(&ron, "r2.ron").unwrap()), "r3.ron").unwrap();
        prop_assert_eq!(to_ron(&again), ron);
    }

    #[test]
    fn awkward_floats_survive_the_trip(
        mantissa in 1.0f64..10.0,
        exp in -12i32..3,
    ) {
        // Values like 7.158203125e-9 must reparse to the identical bits —
        // the emitter relies on this for the bit-for-bit default chip.
        let x = mantissa * 10f64.powi(exp);
        let mut c = chip(0, 2, 40.0, 120.0, 12.0, 0.5, 3, 1);
        c.pe_rber_coeff = x;
        c.anchors[0].rber = x;
        let vf = VendorFile { vendor: "vendor-pt".to_string(), chips: vec![c] };
        let back = parse_vendor_file(&to_ron(&vf), "floats.ron").unwrap();
        prop_assert_eq!(back.chips[0].pe_rber_coeff.to_bits(), x.to_bits());
        prop_assert_eq!(back.chips[0].anchors[0].rber.to_bits(), x.to_bits());
    }
}
